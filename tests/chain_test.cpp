// Chain substrate tests: metered storage semantics and journaling, block
// structure, PoW, validation, the execution environment's transaction
// handling (including out-of-gas rollback), and authenticated state proofs.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "chain/contract.h"
#include "chain/environment.h"
#include "chain/storage.h"
#include "crypto/digest.h"

namespace gem2::chain {
namespace {

// --- MeteredStorage ----------------------------------------------------------

TEST(Storage, LoadOfEmptySlotChargesAndReturnsZero) {
  MeteredStorage storage;
  gas::Meter meter;
  EXPECT_EQ(storage.Load({1, 7}, meter), kZeroWord);
  EXPECT_EQ(meter.op_counts().sload, 1u);
}

TEST(Storage, StoreChargesSstoreThenSupdate) {
  MeteredStorage storage;
  gas::Meter meter;
  storage.Store({1, 0}, WordFromUint64(5), meter);
  EXPECT_EQ(meter.op_counts().sstore, 1u);
  EXPECT_EQ(meter.op_counts().supdate, 0u);
  storage.Store({1, 0}, WordFromUint64(6), meter);
  EXPECT_EQ(meter.op_counts().supdate, 1u);
  EXPECT_EQ(Uint64FromWord(storage.Peek({1, 0})), 6u);
}

TEST(Storage, ZeroStoreClearsSlot) {
  MeteredStorage storage;
  gas::Meter meter;
  storage.Store({1, 0}, WordFromUint64(5), meter);
  EXPECT_TRUE(storage.Contains({1, 0}));
  storage.Store({1, 0}, kZeroWord, meter);
  EXPECT_FALSE(storage.Contains({1, 0}));
  // Re-storing is an sstore again (slot is empty).
  storage.Store({1, 0}, WordFromUint64(7), meter);
  EXPECT_EQ(meter.op_counts().sstore, 2u);
}

TEST(Storage, RegionsAreIndependent) {
  MeteredStorage storage;
  gas::Meter meter;
  storage.Store({1, 42}, WordFromUint64(1), meter);
  storage.Store({2, 42}, WordFromUint64(2), meter);
  EXPECT_EQ(Uint64FromWord(storage.Peek({1, 42})), 1u);
  EXPECT_EQ(Uint64FromWord(storage.Peek({2, 42})), 2u);
  EXPECT_EQ(storage.NumSlots(), 2u);
}

TEST(Storage, RollbackRestoresPriorState) {
  MeteredStorage storage;
  gas::Meter meter;
  storage.Store({1, 0}, WordFromUint64(1), meter);

  storage.BeginTx();
  storage.Store({1, 0}, WordFromUint64(99), meter);   // overwrite
  storage.Store({1, 1}, WordFromUint64(2), meter);    // create
  storage.Store({1, 0}, kZeroWord, meter);            // clear
  storage.RollbackTx();

  EXPECT_EQ(Uint64FromWord(storage.Peek({1, 0})), 1u);
  EXPECT_FALSE(storage.Contains({1, 1}));
}

TEST(Storage, CommitKeepsChanges) {
  MeteredStorage storage;
  gas::Meter meter;
  storage.BeginTx();
  storage.Store({1, 0}, WordFromUint64(11), meter);
  storage.CommitTx();
  EXPECT_EQ(Uint64FromWord(storage.Peek({1, 0})), 11u);
}

TEST(Storage, TransactionBracketingErrors) {
  MeteredStorage storage;
  EXPECT_THROW(storage.CommitTx(), std::logic_error);
  EXPECT_THROW(storage.RollbackTx(), std::logic_error);
  storage.BeginTx();
  EXPECT_THROW(storage.BeginTx(), std::logic_error);
  storage.CommitTx();
}

TEST(Storage, FingerprintIsOrderIndependentAndRollbackStable) {
  MeteredStorage a;
  MeteredStorage b;
  gas::Meter meter;
  a.Store({1, 0}, WordFromUint64(1), meter);
  a.Store({2, 9}, WordFromUint64(2), meter);
  b.Store({2, 9}, WordFromUint64(2), meter);
  b.Store({1, 0}, WordFromUint64(1), meter);
  // The fingerprint commits to contents, not write history.
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  const Hash before = a.Fingerprint();
  a.BeginTx();
  a.Store({1, 0}, WordFromUint64(5), meter);
  a.Store({4, 4}, WordFromUint64(6), meter);
  EXPECT_NE(a.Fingerprint(), before);
  a.RollbackTx();
  EXPECT_EQ(a.Fingerprint(), before);

  b.Store({1, 0}, kZeroWord, meter);  // clearing a slot changes the content
  EXPECT_NE(b.Fingerprint(), before);
}

// --- Blockchain -------------------------------------------------------------

TEST(Pow, LeadingZeroBits) {
  Hash h{};
  EXPECT_TRUE(SatisfiesPow(h, 0));
  EXPECT_TRUE(SatisfiesPow(h, 256));
  h[0] = 0x01;  // 7 leading zero bits
  EXPECT_TRUE(SatisfiesPow(h, 7));
  EXPECT_FALSE(SatisfiesPow(h, 8));
  h[0] = 0x80;
  EXPECT_FALSE(SatisfiesPow(h, 1));
}

TEST(Blockchain, GenesisAndAppend) {
  Blockchain chain(0);
  EXPECT_EQ(chain.height(), 0u);
  Transaction tx;
  tx.contract = "ads";
  tx.method = "insert";
  chain.Append({tx}, crypto::EmptyTreeDigest(), 1);
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_EQ(chain.latest().transactions.size(), 1u);
  std::string error;
  EXPECT_TRUE(chain.Validate(&error)) << error;
}

TEST(Blockchain, MiningSatisfiesDifficulty) {
  Blockchain chain(10);
  chain.Append({}, crypto::EmptyTreeDigest(), 1);
  for (const Block& b : chain.blocks()) {
    EXPECT_TRUE(SatisfiesPow(b.header.Digest(), 10));
  }
  std::string error;
  EXPECT_TRUE(chain.Validate(&error)) << error;
}

class TamperedChainTest : public ::testing::Test {
 protected:
  Blockchain MakeChain() {
    Blockchain chain(4);
    for (int i = 0; i < 3; ++i) {
      Transaction tx;
      tx.seq = static_cast<uint64_t>(i);
      tx.contract = "ads";
      chain.Append({tx}, crypto::EmptyTreeDigest(), static_cast<uint64_t>(i));
    }
    return chain;
  }
};

TEST_F(TamperedChainTest, DetectsTamperedTransaction) {
  Blockchain chain = MakeChain();
  const_cast<Block&>(chain.blocks()[2]).transactions[0].method = "evil";
  EXPECT_FALSE(chain.Validate());
}

TEST_F(TamperedChainTest, DetectsRewrittenStateRoot) {
  Blockchain chain = MakeChain();
  const_cast<Block&>(chain.blocks()[1]).header.state_root = Hash{};
  // Changing the header invalidates the next block's prev_hash (and likely
  // the PoW).
  EXPECT_FALSE(chain.Validate());
}

TEST_F(TamperedChainTest, DetectsForgedNonce) {
  Blockchain chain = MakeChain();
  const_cast<Block&>(chain.blocks()[3]).header.nonce += 1;
  EXPECT_FALSE(chain.Validate());
}

// --- Environment --------------------------------------------------------------

/// Minimal contract for environment tests: one counter slot.
class CounterContract : public Contract {
 public:
  CounterContract() : Contract("counter") {}

  void Add(uint64_t amount, gas::Meter& meter) {
    uint64_t v = storage().LoadUint({1, 0}, meter);
    storage().StoreUint({1, 0}, v + amount, meter);
  }

  void Explode(gas::Meter& meter) {
    for (uint64_t i = 0; i < 1'000'000; ++i) storage().StoreUint({2, i}, 1, meter);
  }

  void StoreThenThrow(gas::Meter& meter) {
    storage().StoreUint({1, 0}, 777, meter);
    storage().StoreUint({3, 5}, 1, meter);
    throw std::runtime_error("contract bug");
  }

  std::vector<DigestEntry> AuthenticatedDigests() const override {
    Hash h{};
    h[31] = static_cast<uint8_t>(storage().Peek({1, 0})[31]);
    return {{"counter", h}};
  }
};

TEST(Environment, ExecuteMetersAndRecords) {
  Environment env;
  CounterContract contract;
  env.Register(&contract);
  TxReceipt r = env.Execute(contract, "add",
                            [&](gas::Meter& m) { contract.Add(5, m); });
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.gas_used, 200u + 20'000u);  // sload + sstore
  r = env.Execute(contract, "add", [&](gas::Meter& m) { contract.Add(2, m); });
  EXPECT_EQ(r.gas_used, 200u + 5'000u);  // sload + supdate
  EXPECT_EQ(Uint64FromWord(contract.storage().Peek({1, 0})), 7u);
  EXPECT_EQ(env.num_transactions(), 2u);
  EXPECT_EQ(env.total_gas_used(), 25'400u);
}

TEST(Environment, OutOfGasRollsBackAndReports) {
  EnvironmentOptions options;
  options.gas_limit = 100'000;
  Environment env(options);
  CounterContract contract;
  env.Register(&contract);
  env.Execute(contract, "add", [&](gas::Meter& m) { contract.Add(1, m); });

  TxReceipt r =
      env.Execute(contract, "explode", [&](gas::Meter& m) { contract.Explode(m); });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of gas"), std::string::npos);
  // Even a failed receipt explains where the gas went: the partial
  // breakdown at the abort point, consistent with gas_used.
  EXPECT_GT(r.gas_used, 0u);
  EXPECT_EQ(r.breakdown.total(), r.gas_used);
  EXPECT_GT(r.op_counts.sstore + r.op_counts.supdate + r.op_counts.sload, 0u);
  // The exploded writes were rolled back; the counter survives.
  EXPECT_EQ(Uint64FromWord(contract.storage().Peek({1, 0})), 1u);
  EXPECT_FALSE(contract.storage().Contains({2, 0}));
}

TEST(Environment, NonOogExceptionAlsoRollsBackStorage) {
  // Out-of-gas is not special: ANY exception escaping a transaction body
  // (a contract bug, a logic_error) must roll the storage back before it
  // propagates, leaving state identical to never having run the tx.
  Environment env;
  CounterContract contract;
  env.Register(&contract);
  env.Execute(contract, "add", [&](gas::Meter& m) { contract.Add(9, m); });
  const Hash fingerprint_before = contract.storage().Fingerprint();
  const Hash root_before = env.CurrentStateRoot();

  EXPECT_THROW(env.Execute(contract, "boom",
                           [&](gas::Meter& m) { contract.StoreThenThrow(m); }),
               std::runtime_error);

  EXPECT_EQ(Uint64FromWord(contract.storage().Peek({1, 0})), 9u);
  EXPECT_FALSE(contract.storage().Contains({3, 5}));
  EXPECT_EQ(contract.storage().Fingerprint(), fingerprint_before);
  EXPECT_EQ(env.CurrentStateRoot(), root_before);

  // The environment stays usable afterwards.
  TxReceipt r = env.Execute(contract, "add", [&](gas::Meter& m) { contract.Add(1, m); });
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(Uint64FromWord(contract.storage().Peek({1, 0})), 10u);
}

TEST(Environment, AuthenticatedStateProofsVerify) {
  Environment env;
  CounterContract contract;
  env.Register(&contract);
  env.Execute(contract, "add", [&](gas::Meter& m) { contract.Add(3, m); });

  AuthenticatedState state = env.ReadAuthenticatedState("counter");
  ASSERT_EQ(state.digests.size(), 1u);
  EXPECT_TRUE(Environment::VerifyAuthenticatedState(state));

  // Tampering with the digest breaks the proof.
  AuthenticatedState bad = state;
  bad.digests[0].entry.digest[0] ^= 0xff;
  EXPECT_FALSE(Environment::VerifyAuthenticatedState(bad));

  // Tampering with the label breaks the proof too.
  AuthenticatedState bad2 = state;
  bad2.digests[0].entry.label = "other";
  EXPECT_FALSE(Environment::VerifyAuthenticatedState(bad2));
}

TEST(Environment, BlocksSealEveryKTransactions) {
  EnvironmentOptions options;
  options.txs_per_block = 2;
  Environment env(options);
  CounterContract contract;
  env.Register(&contract);
  for (int i = 0; i < 5; ++i) {
    env.Execute(contract, "add", [&](gas::Meter& m) { contract.Add(1, m); });
  }
  EXPECT_EQ(env.blockchain().height(), 2u);  // 4 sealed, 1 pending
  env.SealBlock();
  EXPECT_EQ(env.blockchain().height(), 3u);
}

TEST(Environment, RejectsDuplicateAndUnknownContracts) {
  Environment env;
  CounterContract contract;
  env.Register(&contract);
  CounterContract dup;
  EXPECT_THROW(env.Register(&dup), std::invalid_argument);
  EXPECT_THROW(env.ReadAuthenticatedState("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace gem2::chain
