// SP service front-end behavior over real sockets: end-to-end authenticated
// queries through the epoll reactor, the no-copy QueryWireInto path is
// byte-identical to QueryWire, admission control sheds with explicit BUSY
// frames, pipelined responses correlate by request id, slow-loris senders
// are served while slow readers are disconnected, malformed and oversized
// frames fail closed, clean shutdown flushes in-flight responses, and the
// whole thing shows up in metrics / introspection / Prometheus.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <thread>

#include "core/authenticated_db.h"
#include "core/query_engine.h"
#include "fault/fault.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "seed_util.h"
#include "shard/sharded_db.h"
#include "telemetry/introspect.h"
#include "telemetry/metrics.h"
#include "workload/workload.h"

namespace gem2::net {
namespace {

using core::AdsKind;
using core::AuthenticatedDb;
using core::DbOptions;
using core::WireVersion;
using fault::DeriveSeed;
using testutil::SeedReporter;

std::unique_ptr<AuthenticatedDb> MakeDb(uint64_t seed, WireVersion version,
                                        size_t n = 300) {
  workload::WorkloadOptions wopts;
  wopts.domain_max = 100'000;
  wopts.seed = seed;
  workload::WorkloadGenerator gen(wopts);

  DbOptions options;
  options.kind = AdsKind::kGem2;
  options.gem2.m = 4;
  options.gem2.smax = 64;
  options.wire_version = version;
  options.env.gas_limit = 1'000'000'000'000ull;
  auto db = std::make_unique<AuthenticatedDb>(options);
  for (const workload::Operation& op : gen.Batch(n)) {
    if (!db->Contains(op.object.key)) {
      EXPECT_TRUE(db->Insert(op.object).ok);
    }
  }
  return db;
}

/// Spins until `pred` holds or ~2s elapse; returns the final evaluation.
template <typename Pred>
bool Eventually(Pred pred) {
  for (int i = 0; i < 400; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// --- Satellite: QueryWireInto is the no-copy twin of QueryWire -------------

TEST(QueryWireInto, ByteIdenticalToQueryWireAllBackends) {
  SeedReporter seed(11);
  const struct {
    const char* name;
    WireVersion version;
  } versions[] = {{"v2", WireVersion::kV2}, {"v3", WireVersion::kV3}};
  for (const auto& v : versions) {
    auto db = MakeDb(DeriveSeed(seed, 1), v.version);
    for (const auto& [lb, ub] : std::vector<std::pair<Key, Key>>{
             {0, 100'000}, {10, 10}, {50'000, 40'000}, {-100, 250}}) {
      // Fixed trace + frozen response: the append path must reproduce the
      // copying path bit for bit, envelope included.
      const core::QueryResponse response = db->Query(lb, ub);
      const Bytes image = core::SerializeResponse(response, v.version);
      const Bytes reference = core::WrapTracedWire(response.trace, image);
      Bytes appended{0xde, 0xad};  // the "frame header" already in the buffer
      core::WrapTracedWireHeaderInto(response.trace, &appended);
      core::SerializeResponseInto(response, v.version, &appended);
      ASSERT_EQ(appended.size(), 2 + reference.size()) << v.name;
      EXPECT_EQ(appended[0], 0xde);
      EXPECT_TRUE(std::equal(reference.begin(), reference.end(),
                             appended.begin() + 2))
          << v.name << " [" << lb << "," << ub << "]";

      // Across two live queries only the telemetry envelope may differ
      // (fresh span ids) — the authenticated image is identical.
      const Bytes a = db->QueryWire(lb, ub);
      Bytes b;
      db->QueryWireInto(lb, ub, &b);
      EXPECT_EQ(core::UnwrapTracedWire(a).image, core::UnwrapTracedWire(b).image)
          << v.name << " [" << lb << "," << ub << "]";
    }
  }
}

TEST(QueryWireInto, ByteIdenticalOnShardedCompositeResponses) {
  SeedReporter seed(12);
  shard::ShardOptions sopts;
  sopts.base.kind = AdsKind::kGem2;
  sopts.base.gem2.m = 4;
  sopts.base.gem2.smax = 64;
  sopts.base.env.gas_limit = 1'000'000'000'000ull;
  sopts.bounds = {25'000, 50'000, 75'000};
  shard::ShardedDb db(sopts);

  workload::WorkloadOptions wopts;
  wopts.domain_max = 100'000;
  wopts.seed = DeriveSeed(seed, 1);
  workload::WorkloadGenerator gen(wopts);
  for (const workload::Operation& op : gen.Batch(200)) {
    if (!db.Contains(op.object.key)) {
      ASSERT_TRUE(db.Insert(op.object).ok);
    }
  }

  // The cross-shard range exercises the composite (multi-slice) serializer.
  const core::QueryResponse response = db.Query(10'000, 90'000);
  const Bytes reference = core::SerializeResponse(response, db.wire_version());
  Bytes appended;
  core::SerializeResponseInto(response, db.wire_version(), &appended);
  EXPECT_EQ(appended, reference);

  const Bytes a = db.QueryWire(10'000, 90'000);
  Bytes b;
  db.QueryWireInto(10'000, 90'000, &b);
  EXPECT_EQ(core::UnwrapTracedWire(a).image, core::UnwrapTracedWire(b).image);
}

TEST(QueryWireInto, EngineMatchesStoreAndHonorsWireVersion) {
  SeedReporter seed(13);
  auto db = MakeDb(DeriveSeed(seed, 1), WireVersion::kV3);
  core::SpQueryEngine engine(db.get());
  const Bytes image = core::UnwrapTracedWire(db->QueryWire(0, 100'000)).image;
  // The engine serves in the store's configured wire version (v3 here), via
  // both the copying and the append spelling.
  EXPECT_EQ(core::UnwrapTracedWire(engine.QueryWire(0, 100'000)).image, image);
  Bytes from_engine;
  engine.QueryWireInto(0, 100'000, &from_engine);
  EXPECT_EQ(core::UnwrapTracedWire(from_engine).image, image);
}

// --- Server behavior over live sockets -------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void StartServer(WireVersion version, ServerOptions options = {}) {
    // Tear down any previous trio in reverse dependency order: the server
    // references the engine, and the engine's pool scope reverts into the
    // db on destruction — replacing db_ first would leave the old engine
    // pointing at a freed store.
    server_.reset();
    engine_.reset();
    db_ = MakeDb(DeriveSeed(seed_, 1), version);
    engine_ = std::make_unique<core::SpQueryEngine>(db_.get());
    server_ = std::make_unique<SpServer>(*engine_, options);
    server_->Start();
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  /// Sends one query and verifies the response against the ground truth.
  void QueryAndVerify(FrameClient& client, uint64_t request_id, Key lb,
                      Key ub) {
    ASSERT_TRUE(client.SendQuery(request_id, lb, ub, 2000)) << client.error();
    const auto frame = client.ReadFrame(5000);
    ASSERT_TRUE(frame.has_value()) << client.error();
    ASSERT_EQ(frame->type, FrameType::kResponse);
    EXPECT_EQ(frame->request_id, request_id);
    VerifyBody(lb, ub, frame->body);
  }

  void VerifyBody(Key lb, Key ub, const Bytes& body) {
    core::VerifiedResult vr = db_->VerifyWire(lb, ub, body);
    ASSERT_TRUE(vr.ok) << vr.error;
    const core::VerifiedResult truth = db_->AuthenticatedRange(lb, ub);
    ASSERT_TRUE(truth.ok) << truth.error;
    ASSERT_EQ(vr.objects.size(), truth.objects.size());
    for (size_t i = 0; i < truth.objects.size(); ++i) {
      EXPECT_EQ(vr.objects[i].key, truth.objects[i].key);
      EXPECT_EQ(vr.objects[i].value, truth.objects[i].value);
    }
  }

  SeedReporter seed_{77};
  std::unique_ptr<AuthenticatedDb> db_;
  std::unique_ptr<core::SpQueryEngine> engine_;
  std::unique_ptr<SpServer> server_;
};

TEST_F(ServiceTest, EndToEndQueryVerifiesV2) {
  StartServer(WireVersion::kV2);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();
  QueryAndVerify(client, 1, 0, 100'000);
  QueryAndVerify(client, 2, 42, 50'000);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.responses, 2u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST_F(ServiceTest, EndToEndQueryVerifiesV3) {
  StartServer(WireVersion::kV3);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();
  QueryAndVerify(client, 9, 0, 100'000);
}

TEST_F(ServiceTest, EndToEndSpecQueryVerifiesBothWireVersions) {
  for (WireVersion version : {WireVersion::kV2, WireVersion::kV3}) {
    StartServer(version);
    FrameClient client;
    ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();

    std::vector<core::QuerySpec> specs;
    specs.push_back(core::QuerySpec::Range(0, 100'000));
    {
      core::QuerySpec both;  // AND of two overlapping ranges on attribute 0
      both.predicates.push_back(
          core::Predicate{core::PredicateKind::kRange, 0, 0, 60'000});
      both.predicates.push_back(
          core::Predicate{core::PredicateKind::kRange, 0, 30'000, 100'000});
      specs.push_back(both);
      core::QuerySpec either = both;
      either.op = core::BoolOp::kOr;
      specs.push_back(either);
      core::QuerySpec count = core::QuerySpec::Range(0, 100'000);
      count.aggregate = core::AggregateKind::kCount;
      specs.push_back(count);
    }

    uint64_t request_id = 1;
    for (const core::QuerySpec& spec : specs) {
      ASSERT_TRUE(client.SendQuerySpec(request_id, spec, 2000))
          << client.error();
      const auto frame = client.ReadFrame(5000);
      ASSERT_TRUE(frame.has_value()) << client.error();
      ASSERT_EQ(frame->type, FrameType::kResponse);
      EXPECT_EQ(frame->request_id, request_id);
      core::VerifiedSpecResult vr = db_->VerifySpecWire(spec, frame->body);
      ASSERT_TRUE(vr.ok) << core::ToString(spec) << ": " << vr.error;
      const core::VerifiedSpecResult truth = db_->AuthenticatedSpec(spec);
      ASSERT_TRUE(truth.ok) << truth.error;
      ASSERT_EQ(vr.objects.size(), truth.objects.size());
      for (size_t i = 0; i < truth.objects.size(); ++i) {
        EXPECT_EQ(vr.objects[i].key, truth.objects[i].key);
        EXPECT_EQ(vr.objects[i].value, truth.objects[i].value);
      }
      EXPECT_EQ(vr.aggregates.has_value(), truth.aggregates.has_value());
      if (vr.aggregates.has_value()) {
        EXPECT_EQ(vr.aggregates->count, truth.aggregates->count);
      }
      ++request_id;
    }
    server_->Stop();
  }
}

TEST_F(ServiceTest, LegacyAndSpecQueriesInterleaveOnOneConnection) {
  StartServer(WireVersion::kV2);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();

  // Old and new request generations alternate on one stream; the legacy
  // QUERY frame keeps being served unchanged next to QUERY2.
  QueryAndVerify(client, 1, 0, 50'000);
  const core::QuerySpec spec = core::QuerySpec::Range(0, 50'000);
  ASSERT_TRUE(client.SendQuerySpec(2, spec, 2000)) << client.error();
  const auto frame = client.ReadFrame(5000);
  ASSERT_TRUE(frame.has_value()) << client.error();
  ASSERT_EQ(frame->type, FrameType::kResponse);
  core::VerifiedSpecResult vr = db_->VerifySpecWire(spec, frame->body);
  ASSERT_TRUE(vr.ok) << vr.error;
  QueryAndVerify(client, 3, 100, 40'000);

  // The single-predicate spec answer carries the same verified result set as
  // the legacy query for the same range.
  const core::VerifiedResult legacy = db_->AuthenticatedRange(0, 50'000);
  ASSERT_TRUE(legacy.ok);
  ASSERT_EQ(vr.objects.size(), legacy.objects.size());
  for (size_t i = 0; i < legacy.objects.size(); ++i) {
    EXPECT_EQ(vr.objects[i].key, legacy.objects[i].key);
  }
}

TEST_F(ServiceTest, MalformedSpecBodyGetsErrorFrameThenDisconnect) {
  StartServer(WireVersion::kV2);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();

  // A kQuery2 frame whose body is not one valid spec image poisons the
  // server-side decoder: diagnostic, then disconnect — never resynchronize.
  Bytes bogus_body{0x07};  // unknown BoolOp tag
  ASSERT_TRUE(
      client.Send(EncodeFrame(FrameType::kQuery2, 4, bogus_body), 2000));
  const auto frame = client.ReadFrame(5000);
  ASSERT_TRUE(frame.has_value()) << client.error();
  EXPECT_EQ(frame->type, FrameType::kError);
  const auto eof = client.ReadFrame(5000);
  EXPECT_FALSE(eof.has_value());
  EXPECT_FALSE(client.connected());
  EXPECT_TRUE(Eventually([&] { return server_->stats().protocol_errors > 0; }));
}

TEST_F(ServiceTest, RetryingSocketClientAuthenticatedSpec) {
  StartServer(WireVersion::kV3);
  fault::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.attempt_timeout_us = 2'000'000;
  policy.deadline_us = 5'000'000;
  RetryingSocketClient client(*db_, server_->port(), policy,
                              DeriveSeed(seed_, 21));

  core::QuerySpec spec;
  spec.op = core::BoolOp::kOr;
  spec.predicates.push_back(
      core::Predicate{core::PredicateKind::kRange, 0, 0, 20'000});
  spec.predicates.push_back(
      core::Predicate{core::PredicateKind::kRange, 0, 80'000, 100'000});
  const SpecSocketOutcome outcome = client.AuthenticatedSpec(spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_FALSE(outcome.degraded);

  const core::VerifiedSpecResult truth = db_->AuthenticatedSpec(spec);
  ASSERT_TRUE(truth.ok) << truth.error;
  ASSERT_EQ(outcome.result.objects.size(), truth.objects.size());
  for (size_t i = 0; i < truth.objects.size(); ++i) {
    EXPECT_EQ(outcome.result.objects[i].key, truth.objects[i].key);
  }
}

TEST_F(ServiceTest, PipelinedResponsesCorrelateByRequestId) {
  StartServer(WireVersion::kV2);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();

  // Fire 32 distinct ranges down one connection before reading anything;
  // workers may answer out of order, the request id is the correlator.
  std::map<uint64_t, std::pair<Key, Key>> ranges;
  for (uint64_t id = 1; id <= 32; ++id) {
    const Key lb = Key(id) * 1000;
    const Key ub = lb + 20'000;
    ranges.emplace(id, std::make_pair(lb, ub));
    ASSERT_TRUE(client.SendQuery(id, lb, ub, 2000)) << client.error();
  }
  std::map<uint64_t, Bytes> bodies;
  while (bodies.size() < ranges.size()) {
    const auto frame = client.ReadFrame(5000);
    ASSERT_TRUE(frame.has_value()) << client.error();
    ASSERT_EQ(frame->type, FrameType::kResponse);
    ASSERT_TRUE(ranges.count(frame->request_id));
    EXPECT_TRUE(bodies.emplace(frame->request_id, frame->body).second)
        << "duplicate response for id " << frame->request_id;
  }
  // Verify after the socket is drained: workers are idle now, so client-side
  // light-client sync cannot overlap server-side query execution.
  for (const auto& [id, range] : ranges) {
    VerifyBody(range.first, range.second, bodies.at(id));
  }
}

TEST_F(ServiceTest, AdmissionControlShedsWithExplicitBusyFrames) {
  ServerOptions options;
  options.max_in_flight = 0;  // nothing is ever admitted
  StartServer(WireVersion::kV2, options);

  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();
  ASSERT_TRUE(client.SendQuery(5, 0, 100, 2000));
  const auto frame = client.ReadFrame(5000);
  ASSERT_TRUE(frame.has_value()) << client.error();
  EXPECT_EQ(frame->type, FrameType::kBusy);
  EXPECT_EQ(frame->request_id, 5u);
  // The connection survives a shed: the client backs off and retries.
  ASSERT_TRUE(client.SendQuery(6, 0, 100, 2000));
  const auto again = client.ReadFrame(5000);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->type, FrameType::kBusy);

  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.responses, 0u);
  EXPECT_GE(telemetry::MetricsRegistry::Global()
                .counter("service.shed")
                .value(),
            2u);
}

TEST_F(ServiceTest, RetryingSocketClientSeesBusyAndDegradesGracefully) {
  ServerOptions options;
  options.max_in_flight = 0;
  StartServer(WireVersion::kV2, options);

  fault::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.attempt_timeout_us = 200'000;
  policy.deadline_us = 2'000'000;
  RetryingSocketClient client(*db_, server_->port(), policy,
                              DeriveSeed(seed_, 9));
  const SocketOutcome outcome = client.AuthenticatedRange(0, 1000);
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_EQ(outcome.busy_responses, 3u);  // every attempt saw an explicit shed
}

TEST_F(ServiceTest, StaleFrameStreamCannotExtendPastDeadline) {
  // A hostile server streaming frames whose request ids never match must
  // not stretch a single attempt past policy_.deadline_us: every read in
  // the stale-skip loop is budgeted against the overall deadline.
  const int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(listen(listen_fd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t port = ntohs(addr.sin_port);
  std::thread feeder([listen_fd] {
    const int c = accept(listen_fd, nullptr, nullptr);
    if (c < 0) return;
    const Bytes stale = EncodeFrame(FrameType::kBusy, 0xdeadbeefULL, {});
    while (send(c, stale.data(), stale.size(), MSG_NOSIGNAL) > 0) {
    }
    close(c);
  });

  db_ = MakeDb(DeriveSeed(seed_, 21), WireVersion::kV2);
  fault::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.attempt_timeout_us = 200'000;
  policy.deadline_us = 400'000;
  RetryingSocketClient client(*db_, port, policy, DeriveSeed(seed_, 22));
  const auto t0 = std::chrono::steady_clock::now();
  const SocketOutcome outcome = client.AuthenticatedRange(0, 1000);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.degraded);
  // Generous bound: the point is "bounded by the deadline", not "fast".
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  shutdown(listen_fd, SHUT_RDWR);  // wakes the feeder if it is still in accept
  close(listen_fd);
  feeder.join();
}

TEST_F(ServiceTest, SlowLorisSenderIsStillServed) {
  StartServer(WireVersion::kV2);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();

  // Dribble the query frame a byte at a time; the reactor must buffer the
  // partial frame across reads without blocking anyone else.
  const Bytes query = EncodeQueryFrame(3, 100, 5000);
  for (const uint8_t byte : query) {
    Bytes one{byte};
    ASSERT_TRUE(client.Send(one, 2000)) << client.error();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto frame = client.ReadFrame(5000);
  ASSERT_TRUE(frame.has_value()) << client.error();
  ASSERT_EQ(frame->type, FrameType::kResponse);
  EXPECT_EQ(frame->request_id, 3u);
  VerifyBody(100, 5000, frame->body);
}

TEST_F(ServiceTest, GarbageInputGetsErrorFrameThenDisconnect) {
  StartServer(WireVersion::kV2);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();
  Bytes garbage(64, 0x5a);
  ASSERT_TRUE(client.Send(garbage, 2000));
  const auto frame = client.ReadFrame(5000);
  ASSERT_TRUE(frame.has_value()) << client.error();
  EXPECT_EQ(frame->type, FrameType::kError);
  // After the diagnostic the server drops the connection — fail closed,
  // never resynchronize.
  const auto eof = client.ReadFrame(5000);
  EXPECT_FALSE(eof.has_value());
  EXPECT_FALSE(client.connected());
  EXPECT_TRUE(Eventually([&] { return server_->stats().protocol_errors > 0; }));
}

TEST_F(ServiceTest, OversizedFrameRejectedFromHeaderAlone) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  StartServer(WireVersion::kV2, options);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();
  Bytes header;
  AppendFrameHeader(&header, FrameType::kQuery, 1, 1u << 20);
  ASSERT_TRUE(client.Send(header, 2000));
  const auto frame = client.ReadFrame(5000);
  ASSERT_TRUE(frame.has_value()) << client.error();
  EXPECT_EQ(frame->type, FrameType::kError);
  const auto eof = client.ReadFrame(5000);
  EXPECT_FALSE(eof.has_value());
}

TEST_F(ServiceTest, SlowReaderIsDisconnectedNotBuffered) {
  ServerOptions options;
  options.max_outbound_bytes = 64 * 1024;
  StartServer(WireVersion::kV2, options);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();

  // Never read; keep asking for the full domain until kernel socket buffers
  // fill and the server-side outbound buffer blows through its bound.
  for (uint64_t id = 1; id <= 4096; ++id) {
    if (!client.SendQuery(id, 0, 100'000, 100)) break;  // send may jam; fine
    if (server_->stats().disconnected_slow > 0) break;
  }
  EXPECT_TRUE(
      Eventually([&] { return server_->stats().disconnected_slow > 0; }));
}

TEST_F(ServiceTest, MidPipelineDisconnectNeverTouchesFreedConnection) {
  // Regression: appending a kBusy frame can destroy the connection from
  // *inside* the pipelined-frame loop (outbound-bound overflow while later
  // frames are still buffered in the decoder). The loop must detect the
  // close by connection id, never by dereferencing the freed object —
  // under ASan the old guard read freed memory here.
  ServerOptions options;
  options.max_in_flight = 0;       // every query sheds with kBusy
  options.max_outbound_bytes = 8;  // smaller than one 20-byte BUSY frame
  StartServer(WireVersion::kV2, options);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();

  // One write carrying many pipelined queries: the reactor decodes them in
  // a single read pass, and the FIRST shed response overflows the outbound
  // bound and disconnects the client mid-loop.
  Bytes burst;
  for (uint64_t id = 1; id <= 16; ++id) {
    const Bytes q = EncodeQueryFrame(id, 0, 100);
    burst.insert(burst.end(), q.begin(), q.end());
  }
  ASSERT_TRUE(client.Send(burst, 2000)) << client.error();
  EXPECT_TRUE(
      Eventually([&] { return server_->stats().disconnected_slow > 0; }));
  const auto eof = client.ReadFrame(2000);
  EXPECT_FALSE(eof.has_value());

  // The reactor survived the mid-loop close and still accepts fresh peers.
  FrameClient fresh;
  EXPECT_TRUE(fresh.Connect(server_->port(), 2000)) << fresh.error();
}

TEST_F(ServiceTest, CleanShutdownFlushesInFlightResponses) {
  ServerOptions options;
  options.worker_threads = 2;
  StartServer(WireVersion::kV2, options);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();
  // Small responses: the flush must fit kernel socket buffers even though
  // this client only starts reading after Stop() returns.
  const int kInFlight = 16;
  for (uint64_t id = 1; id <= kInFlight; ++id) {
    ASSERT_TRUE(client.SendQuery(id, 0, 5'000, 2000));
  }
  // Only *admitted* queries survive shutdown — frames still in socket
  // buffers when Stop lands may never be read. Wait for admission, then
  // stop while the two workers still have most of the queue ahead of them.
  ASSERT_TRUE(Eventually(
      [&] { return server_->stats().requests >= uint64_t(kInFlight); }));
  server_->Stop();
  int responses = 0;
  std::map<uint64_t, Bytes> bodies;
  while (true) {
    const auto frame = client.ReadFrame(2000);
    if (!frame.has_value()) break;  // EOF after the flush
    ASSERT_EQ(frame->type, FrameType::kResponse);
    bodies.emplace(frame->request_id, frame->body);
    ++responses;
  }
  EXPECT_EQ(responses, kInFlight);
  for (const auto& [id, body] : bodies) VerifyBody(0, 5'000, body);
  EXPECT_FALSE(server_->running());
}

TEST_F(ServiceTest, TelemetryIntrospectionAndPrometheusExposeService) {
  StartServer(WireVersion::kV2);
  FrameClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 2000)) << client.error();
  QueryAndVerify(client, 1, 0, 100'000);

  // Provider facts while running...
  const telemetry::ProviderFacts facts =
      telemetry::Introspection::Global().Collect();
  // Collect() prefixes each fact with its provider name: the server
  // registers as "service" and its facts are already "service.*"-named.
  auto fact = [&](const std::string& key) -> const uint64_t* {
    for (const auto& [k, v] : facts) {
      if (k == "service.service." + key) return &v;
    }
    return nullptr;
  };
  const uint64_t* port = fact("port");
  ASSERT_NE(port, nullptr) << "service provider facts missing";
  EXPECT_EQ(*port, server_->port());
  ASSERT_NE(fact("accepted_total"), nullptr);
  EXPECT_GE(*fact("accepted_total"), 1u);

  // ...service.* metrics in the registry and the Prometheus exposition.
  auto& reg = telemetry::MetricsRegistry::Global();
  EXPECT_GE(reg.counter("service.requests").value(), 1u);
  EXPECT_GE(reg.counter("service.responses").value(), 1u);
  const std::string prom = telemetry::PrometheusExposition();
  EXPECT_NE(prom.find("gem2_service_requests_total"), std::string::npos);
  EXPECT_NE(prom.find("gem2_service_request_ns_query"), std::string::npos);

  // Stop unregisters the provider: no stale facts from a dead server.
  server_->Stop();
  for (const auto& [k, v] : telemetry::Introspection::Global().Collect()) {
    EXPECT_TRUE(k.rfind("service.", 0) != 0) << k;
  }
}

TEST_F(ServiceTest, ManyConnectionsQueryConcurrently) {
  StartServer(WireVersion::kV2);
  const int kConns = 64;
  std::vector<std::unique_ptr<FrameClient>> clients;
  for (int i = 0; i < kConns; ++i) {
    auto c = std::make_unique<FrameClient>();
    ASSERT_TRUE(c->Connect(server_->port(), 2000)) << c->error();
    ASSERT_TRUE(c->SendQuery(uint64_t(i) + 1, Key(i) * 100,
                             Key(i) * 100 + 30'000, 2000));
    clients.push_back(std::move(c));
  }
  std::map<int, Bytes> bodies;
  for (int i = 0; i < kConns; ++i) {
    const auto frame = clients[i]->ReadFrame(10'000);
    ASSERT_TRUE(frame.has_value()) << clients[i]->error();
    ASSERT_EQ(frame->type, FrameType::kResponse);
    EXPECT_EQ(frame->request_id, uint64_t(i) + 1);
    bodies.emplace(i, frame->body);
  }
  EXPECT_GE(server_->stats().accepted, uint64_t(kConns));
  for (const auto& [i, body] : bodies) {
    VerifyBody(Key(i) * 100, Key(i) * 100 + 30'000, body);
  }
}

}  // namespace
}  // namespace gem2::net
