// Socket chaos: the deterministic flaky-channel operators (drop, corrupt,
// truncate, duplicate, reorder, latency) replayed against LIVE response
// traffic through the in-process ChaosProxy, with the retrying socket client
// running its full discipline — reconnect on framing damage, retry on
// timeout, verify every response. The invariant under every schedule: a
// query either returns the exact ground-truth result or degrades explicitly;
// a damaged or stale response is NEVER accepted. Schedules are pure
// functions of the seed (seed_util.h prints the reproduction recipe).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/authenticated_db.h"
#include "core/query_engine.h"
#include "fault/fault.h"
#include "fault/transport.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/server.h"
#include "seed_util.h"
#include "telemetry/metrics.h"
#include "workload/workload.h"

namespace gem2::net {
namespace {

using core::AdsKind;
using core::AuthenticatedDb;
using core::DbOptions;
using fault::ChannelOptions;
using fault::DeriveSeed;
using testutil::SeedReporter;

std::unique_ptr<AuthenticatedDb> MakeDb(uint64_t seed) {
  workload::WorkloadOptions wopts;
  wopts.domain_max = 100'000;
  wopts.seed = seed;
  workload::WorkloadGenerator gen(wopts);

  DbOptions options;
  options.kind = AdsKind::kGem2;
  options.gem2.m = 4;
  options.gem2.smax = 64;
  options.env.gas_limit = 1'000'000'000'000ull;
  auto db = std::make_unique<AuthenticatedDb>(options);
  for (const workload::Operation& op : gen.Batch(200)) {
    if (!db->Contains(op.object.key)) {
      EXPECT_TRUE(db->Insert(op.object).ok);
    }
  }
  return db;
}

/// Retry policy tuned for real sockets: generous per-attempt timeouts (the
/// in-memory harness uses virtual time; here poll() waits wall-clock).
fault::RetryPolicy SocketPolicy() {
  fault::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.attempt_timeout_us = 250'000;
  policy.deadline_us = 5'000'000;
  policy.base_backoff_us = 1'000;
  policy.max_backoff_us = 20'000;
  return policy;
}

struct SweepResult {
  int ok = 0;
  int degraded = 0;
  uint64_t busy = 0;
  fault::ChannelStats channel;
};

/// Runs `queries` ranges through a fresh server + chaos proxy + retrying
/// client and checks the core invariant on every outcome: an ok result is
/// bit-for-bit the ground truth; anything else is an explicit degradation.
SweepResult RunSweep(uint64_t seed, const ChannelOptions& channel,
                     int queries) {
  auto db = MakeDb(DeriveSeed(seed, 1));
  core::SpQueryEngine engine(db.get());
  ServerOptions sopts;
  sopts.worker_threads = 2;
  SpServer server(engine, sopts);
  server.Start();

  ChaosOptions copts;
  copts.channel = channel;
  copts.seed = DeriveSeed(seed, 2);
  copts.latency_scale = 0.01;  // injected latency in real time, compressed
  ChaosProxy proxy(server.port(), copts);
  proxy.Start();

  RetryingSocketClient client(*db, proxy.port(), SocketPolicy(),
                              DeriveSeed(seed, 3));
  workload::WorkloadOptions wopts;
  wopts.domain_max = 100'000;
  wopts.seed = DeriveSeed(seed, 4);
  workload::WorkloadGenerator gen(wopts);

  SweepResult out;
  for (int q = 0; q < queries; ++q) {
    const workload::RangeQuerySpec range = gen.NextQuery(0.1);
    const Key lb = range.lb, ub = range.ub;
    const SocketOutcome outcome = client.AuthenticatedRange(lb, ub);
    out.busy += outcome.busy_responses;
    if (!outcome.ok) {
      // Graceful degradation is allowed under chaos; silent failure is not.
      EXPECT_TRUE(outcome.degraded);
      EXPECT_FALSE(outcome.error.empty());
      ++out.degraded;
      continue;
    }
    ++out.ok;
    // THE invariant: an accepted result equals the ground truth exactly.
    // Any corrupted, truncated, or stale image the client let through would
    // show up right here.
    const core::VerifiedResult truth = db->AuthenticatedRange(lb, ub);
    EXPECT_TRUE(truth.ok) << truth.error;
    EXPECT_EQ(outcome.result.objects.size(), truth.objects.size())
        << "accepted result diverges from ground truth [" << lb << "," << ub
        << "]";
    if (outcome.result.objects.size() != truth.objects.size()) continue;
    for (size_t i = 0; i < truth.objects.size(); ++i) {
      EXPECT_EQ(outcome.result.objects[i].key, truth.objects[i].key);
      EXPECT_EQ(outcome.result.objects[i].value, truth.objects[i].value);
    }
  }
  out.channel = proxy.stats();
  proxy.Stop();
  server.Stop();
  return out;
}

TEST(ServiceChaos, CleanProxyPassesEverythingFirstAttempt) {
  SeedReporter seed(501);
  const SweepResult r = RunSweep(seed, ChannelOptions{}, 20);
  EXPECT_EQ(r.ok, 20);
  EXPECT_EQ(r.degraded, 0);
  EXPECT_EQ(r.channel.dropped, 0u);
  EXPECT_EQ(r.channel.corrupted, 0u);
}

class SingleSocketFault
    : public ::testing::TestWithParam<std::pair<const char*, ChannelOptions>> {
};

TEST_P(SingleSocketFault, ClientRecoversAndNeverAcceptsDamage) {
  SeedReporter seed(502);
  const auto& [name, channel] = GetParam();
  const SweepResult r = RunSweep(DeriveSeed(seed, 7), channel, 30);
  // Moderate single-fault rates: the retrying client should land almost
  // everything inside its attempt budget.
  EXPECT_GE(r.ok, 25) << name << " degraded " << r.degraded;
  // The faults must actually have fired, or this test proves nothing.
  const auto& cs = r.channel;
  EXPECT_GT(cs.dropped + cs.corrupted + cs.truncated + cs.duplicated +
                cs.reordered,
            0u)
      << name;
}

ChannelOptions Opt(double ChannelOptions::* field, double rate) {
  ChannelOptions options;
  options.*field = rate;
  options.latency_us = 200;
  options.jitter_us = 100;
  return options;
}

INSTANTIATE_TEST_SUITE_P(
    Operators, SingleSocketFault,
    ::testing::Values(
        std::make_pair("drop", Opt(&ChannelOptions::drop_rate, 0.2)),
        std::make_pair("corrupt", Opt(&ChannelOptions::corrupt_rate, 0.25)),
        std::make_pair("truncate", Opt(&ChannelOptions::truncate_rate, 0.25)),
        std::make_pair("duplicate", Opt(&ChannelOptions::duplicate_rate, 0.3)),
        std::make_pair("reorder", Opt(&ChannelOptions::reorder_rate, 0.25))),
    [](const auto& info) { return std::string(info.param.first); });

TEST(ServiceChaos, HostileChannelDegradesGracefullyNeverWrongly) {
  SeedReporter seed(503);
  ChannelOptions hostile;
  hostile.drop_rate = 0.3;
  hostile.corrupt_rate = 0.3;
  hostile.truncate_rate = 0.2;
  hostile.duplicate_rate = 0.2;
  hostile.reorder_rate = 0.2;
  hostile.latency_us = 500;
  hostile.jitter_us = 500;
  const SweepResult r = RunSweep(DeriveSeed(seed, 11), hostile, 20);
  // Under heavy compound fire some queries may degrade — but every single
  // accepted answer was ground truth (asserted inside RunSweep), and the
  // client visibly rejected the damaged images it saw.
  EXPECT_EQ(r.ok + r.degraded, 20);
  EXPECT_GT(r.channel.corrupted + r.channel.truncated, 0u);
}

TEST(ServiceChaos, CorruptionIsRejectedByVerificationNotLuck) {
  SeedReporter seed(504);
  auto& rejected =
      telemetry::MetricsRegistry::Global().counter("client.socket.verify_rejected");
  const uint64_t before = rejected.value();
  ChannelOptions corrupt;
  corrupt.corrupt_rate = 0.5;
  corrupt.latency_us = 100;
  corrupt.jitter_us = 50;
  const SweepResult r = RunSweep(DeriveSeed(seed, 13), corrupt, 30);
  EXPECT_GT(r.channel.corrupted, 0u);
  // At 50% corruption across 30 queries, verification (or fail-closed
  // framing) must have rejected at least one damaged image explicitly; the
  // counter proves rejections happened at the verifier, not by accident.
  EXPECT_GT(r.ok, 0);
  if (r.channel.corrupted > 5) {
    EXPECT_GT(rejected.value() + r.degraded, before)
        << "corruption fired but nothing was ever rejected";
  }
}

TEST(ServiceChaos, ScheduleIsAPureFunctionOfTheSeed) {
  SeedReporter seed(505);
  ChannelOptions channel;
  channel.drop_rate = 0.2;
  channel.corrupt_rate = 0.2;
  channel.latency_us = 100;
  channel.jitter_us = 100;
  // Same seed twice: identical channel decisions (sent counts can differ by
  // retry timing only if the client behaves differently, so compare the
  // decision fractions loosely — the channel stream itself is deterministic
  // per transmitted frame).
  const SweepResult a = RunSweep(DeriveSeed(seed, 17), channel, 15);
  const SweepResult b = RunSweep(DeriveSeed(seed, 17), channel, 15);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.channel.sent, b.channel.sent);
  EXPECT_EQ(a.channel.dropped, b.channel.dropped);
  EXPECT_EQ(a.channel.corrupted, b.channel.corrupted);
}

}  // namespace
}  // namespace gem2::net
