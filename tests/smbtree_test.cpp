// SMB-tree baseline tests (Section IV-B): suppressed on-chain maintenance,
// SP mirror agreement, the paper's O(N) gas model, and authenticated queries.
#include <gtest/gtest.h>

#include <random>

#include "ads/verify.h"
#include "crypto/digest.h"
#include "smbtree/smbtree.h"

namespace gem2::smbtree {
namespace {

Hash Vh(Key k) { return crypto::ValueHash("value-" + std::to_string(k)); }

gas::Meter FreeMeter() { return gas::Meter(gas::kEthereumSchedule, 1ull << 60); }

TEST(SmbTree, ContractAndMirrorRootsAgree) {
  SmbTreeContract contract("smb", 4);
  SmbTreeMirror mirror(4);
  std::mt19937_64 rng(5);
  std::vector<Key> keys;
  for (int i = 0; i < 200; ++i) {
    gas::Meter meter = FreeMeter();
    if (!keys.empty() && rng() % 4 == 0) {
      Key k = keys[rng() % keys.size()];
      Hash vh = crypto::ValueHash("u" + std::to_string(i));
      contract.Update(k, vh, meter);
      mirror.Update(k, vh);
    } else {
      Key k;
      do {
        k = static_cast<Key>(rng() % 100'000);
      } while (std::find(keys.begin(), keys.end(), k) != keys.end());
      contract.Insert(k, Vh(k), meter);
      mirror.Insert(k, Vh(k));
      keys.push_back(k);
    }
    ASSERT_EQ(contract.root_digest(), mirror.root_digest()) << "op " << i;
  }
}

TEST(SmbTree, OnlyRootIsMaterializedOnChain) {
  SmbTreeContract contract("smb", 4);
  for (Key k = 1; k <= 50; ++k) {
    gas::Meter meter = FreeMeter();
    contract.Insert(k, Vh(k), meter);
  }
  // Storage holds exactly one word per object record plus the root slot —
  // no tree nodes (the structure is suppressed).
  EXPECT_EQ(contract.storage().NumSlots(), 50u + 1u);
}

TEST(SmbTree, InsertGasGrowsLinearly) {
  SmbTreeContract contract("smb", 4);
  uint64_t gas_at_100 = 0;
  uint64_t gas_at_400 = 0;
  for (Key k = 1; k <= 401; ++k) {
    gas::Meter meter = FreeMeter();
    contract.Insert(k, Vh(k), meter);
    if (k == 100) gas_at_100 = meter.used();
    if (k == 400) gas_at_400 = meter.used();
  }
  // O(N) rebuild: after removing the constant sstore + supdate tail, 4x the
  // database costs roughly 4x the per-insert gas.
  const uint64_t tail = 25'000;  // Csstore + Csupdate
  const uint64_t var_100 = gas_at_100 - tail;
  const uint64_t var_400 = gas_at_400 - tail;
  EXPECT_GT(var_400, 3 * var_100);
  EXPECT_LT(var_400, 5 * var_100);
}

TEST(SmbTree, InsertGasMatchesPaperTerms) {
  SmbTreeContract contract("smb", 4);
  for (Key k = 1; k <= 64; ++k) {
    gas::Meter meter = FreeMeter();
    contract.Insert(k, Vh(k), meter);
  }
  gas::Meter meter = FreeMeter();
  contract.Insert(1000, Vh(1000), meter);
  const auto& ops = meter.op_counts();
  EXPECT_EQ(ops.sstore, 1u);                 // the object record
  EXPECT_EQ(ops.supdate, 1u);                // the root slot
  EXPECT_EQ(ops.sload, 65u);                 // reload every record
  EXPECT_EQ(ops.mem_words, 65u * 7u);        // 65 * ceil(log2 65)
  EXPECT_GT(ops.hash_calls, 65u);            // entry digests + folds
}

TEST(SmbTree, SeedUnmeteredEquivalentToInserts) {
  SmbTreeContract a("a", 4);
  SmbTreeContract b("b", 4);
  ads::EntryList entries;
  for (Key k = 1; k <= 30; ++k) entries.push_back({k * 3, Vh(k * 3)});
  a.SeedUnmetered(entries);
  for (const ads::Entry& e : entries) {
    gas::Meter meter = FreeMeter();
    b.Insert(e.key, e.value_hash, meter);
  }
  EXPECT_EQ(a.root_digest(), b.root_digest());
  EXPECT_EQ(a.storage().NumSlots(), b.storage().NumSlots());
}

TEST(SmbTree, QueriesVerify) {
  SmbTreeContract contract("smb", 4);
  SmbTreeMirror mirror(4);
  std::vector<Object> objects;
  for (Key k = 0; k < 150; ++k) {
    Object obj{k * 13 % 997, "value-" + std::to_string(k * 13 % 997)};
    if (mirror.size() > 0) {
      ads::EntryList probe;
      mirror.RangeQuery(obj.key, obj.key, &probe);
      if (!probe.empty()) continue;  // skip duplicate
    }
    gas::Meter meter = FreeMeter();
    contract.Insert(obj.key, crypto::ValueHash(obj.value), meter);
    mirror.Insert(obj.key, crypto::ValueHash(obj.value));
    objects.push_back(obj);
  }

  ads::EntryList result;
  ads::TreeVo vo = mirror.RangeQuery(100, 500, &result);
  std::vector<Object> returned;
  for (const ads::Entry& e : result) {
    returned.push_back({e.key, "value-" + std::to_string(e.key)});
  }
  auto outcome = ads::VerifyTreeVo(100, 500, vo, contract.root_digest(), returned);
  EXPECT_TRUE(outcome.ok) << outcome.error;

  // Tampering with a value must be rejected against the contract root.
  if (!returned.empty()) {
    returned[0].value = "forged";
    EXPECT_FALSE(
        ads::VerifyTreeVo(100, 500, vo, contract.root_digest(), returned).ok);
  }
}

TEST(SmbTree, RejectsDuplicateAndUnknownKeys) {
  SmbTreeContract contract("smb", 4);
  gas::Meter meter = FreeMeter();
  contract.Insert(5, Vh(5), meter);
  EXPECT_THROW(contract.Insert(5, Vh(5), meter), std::invalid_argument);
  EXPECT_THROW(contract.Update(6, Vh(6), meter), std::invalid_argument);
}

TEST(SmbTree, UpdateChangesRootInPlace) {
  SmbTreeContract contract("smb", 4);
  for (Key k = 1; k <= 20; ++k) {
    gas::Meter meter = FreeMeter();
    contract.Insert(k, Vh(k), meter);
  }
  Hash before = contract.root_digest();
  gas::Meter meter = FreeMeter();
  contract.Update(7, crypto::ValueHash("new"), meter);
  EXPECT_NE(contract.root_digest(), before);
  EXPECT_EQ(contract.size(), 20u);
  EXPECT_EQ(meter.op_counts().sstore, 0u);  // in-place: no fresh slots
}

}  // namespace
}  // namespace gem2::smbtree
