// Adversarial-SP harness: hundreds of seeded structured forgeries and byte
// corruptions against every ADS kind must all be rejected by the wire codec
// or client verification — the paper's tamper-evidence claim, measured.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>

#include "core/authenticated_db.h"
#include "fault/adversary.h"
#include "fault/fault.h"
#include "fault/mutator.h"
#include "seed_util.h"
#include "workload/workload.h"

namespace gem2::fault {
namespace {

using core::AdsKind;
using core::AuthenticatedDb;
using core::DbOptions;
using testutil::SeedReporter;

std::unique_ptr<AuthenticatedDb> MakeSeededDb(AdsKind kind, uint64_t seed) {
  workload::WorkloadOptions wopts;
  wopts.domain_max = 1'000'000;  // matches AdversaryOptions' query domain
  wopts.seed = seed;
  workload::WorkloadGenerator gen(wopts);

  DbOptions options;
  options.kind = kind;
  options.gem2.m = 4;
  options.gem2.smax = 64;
  options.env.gas_limit = 1'000'000'000'000ull;
  if (kind == AdsKind::kGem2Star) options.split_points = gen.SplitPoints(8);

  auto db = std::make_unique<AuthenticatedDb>(options);
  const size_t inserts =
      (kind == AdsKind::kSmbTree || kind == AdsKind::kLsm) ? 150 : 300;
  for (const workload::Operation& op : gen.Batch(inserts)) {
    if (!db->Contains(op.object.key)) EXPECT_TRUE(db->Insert(op.object).ok);
  }
  return db;
}

// AdsKindName's display strings ("MB-tree", "GEM2*-tree") are not valid
// gtest test-name suffixes; use the conventional spellings.
std::string KindName(AdsKind kind) {
  switch (kind) {
    case AdsKind::kMbTree: return "MbTree";
    case AdsKind::kSmbTree: return "SmbTree";
    case AdsKind::kLsm: return "Lsm";
    case AdsKind::kGem2: return "Gem2";
    case AdsKind::kGem2Star: return "Gem2Star";
  }
  return "Unknown";
}

class AdversarialSweep : public ::testing::TestWithParam<AdsKind> {};

TEST_P(AdversarialSweep, FiveHundredForgeriesAllRejected) {
  SeedReporter seed(2029);
  auto db = MakeSeededDb(GetParam(), DeriveSeed(seed, 1));

  AdversaryOptions options;
  options.seed = seed;
  options.mutations = 500;  // the acceptance floor, per ADS
  AdversaryReport report = RunAdversarialSweep(*db, options);

  EXPECT_EQ(report.attempted, options.mutations);
  EXPECT_TRUE(report.AllRejected()) << report.forged() << " forgeries accepted; first: "
                                    << (report.forgeries.empty() ? "" : report.forgeries[0]);
  // Every attempt is accounted for: rejected at the codec, rejected by the
  // client, or a byte flip that decoded back to the canonical original.
  EXPECT_EQ(report.rejected_parse + report.rejected_verify + report.canonical_noop,
            report.attempted);
  // Structured forgeries dominate and land on the verifier, not just the
  // codec: the sweep must exercise the security argument, not the framing.
  EXPECT_GT(report.rejected_verify, report.attempted / 4);

  // Operator coverage: the always-applicable operators certainly ran, and
  // the sweep touched a broad slice of the catalogue.
  EXPECT_GT(report.attempts_by_op[MutationOpName(MutationOp::kShiftRangeBounds)], 0);
  EXPECT_GT(report.attempts_by_op[MutationOpName(MutationOp::kCorruptWireBytes)], 0);
  EXPECT_GE(report.attempts_by_op.size(), 8u) << KindName(GetParam());
  if (GetParam() == AdsKind::kGem2Star) {
    EXPECT_GT(report.attempts_by_op[MutationOpName(MutationOp::kForgeUpperSplits)], 0);
  } else {
    // Only GEM2* carries upper-level split points to forge.
    EXPECT_EQ(report.attempts_by_op.count(MutationOpName(MutationOp::kForgeUpperSplits)), 0u);
  }

  // The adversary must not have perturbed the database: an honest query
  // still verifies afterwards.
  EXPECT_TRUE(db->AuthenticatedRange(0, 1'000'000).ok);
}

TEST_P(AdversarialSweep, ReportReproducesFromSeedAlone) {
  SeedReporter seed(404);
  auto db = MakeSeededDb(GetParam(), DeriveSeed(seed, 1));

  AdversaryOptions options;
  options.seed = seed;
  options.mutations = 120;
  const AdversaryReport first = RunAdversarialSweep(*db, options);
  const AdversaryReport second = RunAdversarialSweep(*db, options);
  EXPECT_EQ(first, second);

  // And from a from-scratch rebuild of the same world, not just the same
  // instance: the logged seed is the whole reproduction recipe.
  auto rebuilt = MakeSeededDb(GetParam(), DeriveSeed(seed, 1));
  EXPECT_EQ(RunAdversarialSweep(*rebuilt, options), first);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AdversarialSweep,
                         ::testing::Values(AdsKind::kMbTree, AdsKind::kSmbTree,
                                           AdsKind::kLsm, AdsKind::kGem2,
                                           AdsKind::kGem2Star),
                         [](const auto& info) { return KindName(info.param); });

class StaleReplay : public ::testing::TestWithParam<AdsKind> {};

TEST_P(StaleReplay, CapturedResponseFailsAgainstAdvancedChain) {
  SeedReporter seed(7171);
  auto db = MakeSeededDb(GetParam(), DeriveSeed(seed, 1));

  std::string why;
  EXPECT_TRUE(StaleReplayRejected(*db, 0, 1'000'000, /*extra_inserts=*/3,
                                  DeriveSeed(seed, 2), &why));
  EXPECT_FALSE(why.empty());

  // The replay harness's own inserts advanced the chain; fresh answers are
  // unaffected.
  EXPECT_TRUE(db->AuthenticatedRange(0, 1'000'000).ok);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, StaleReplay,
                         ::testing::Values(AdsKind::kMbTree, AdsKind::kSmbTree,
                                           AdsKind::kLsm, AdsKind::kGem2,
                                           AdsKind::kGem2Star),
                         [](const auto& info) { return KindName(info.param); });

// Each structured operator, applied directly, yields an image that fails
// parse or verification — std::nullopt is only legal for the conditional
// operators on responses lacking the material they forge.
TEST(Mutator, EveryStructuredOperatorProducesARejectedImage) {
  SeedReporter seed(31337);
  auto db = MakeSeededDb(AdsKind::kGem2Star, DeriveSeed(seed, 1));
  const core::QueryResponse response = db->Query(1000, 900'000);
  ASSERT_TRUE(db->VerifyFor(1000, 900'000, response).ok);

  ResponseMutator mutator(DeriveSeed(seed, 2));
  int applied = 0;
  for (MutationOp op : kAllMutationOps) {
    std::optional<Mutation> m = mutator.Apply(op, response);
    if (!m.has_value()) continue;
    ++applied;
    EXPECT_EQ(m->op, op);
    EXPECT_EQ(m->byte_level, op == MutationOp::kCorruptWireBytes);
    core::VerifiedResult vr = db->VerifyWire(1000, 900'000, m->wire);
    if (vr.ok) {
      // Only a byte-level flip may be benign, and then only if nothing
      // semantic changed (canonical re-serialization is the original).
      ASSERT_TRUE(m->byte_level) << MutationOpName(op) << " accepted";
      auto parsed = core::ParseResponse(m->wire);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(core::SerializeResponse(*parsed),
                core::SerializeResponse(response))
          << MutationOpName(op) << " accepted with semantic change";
    }
  }
  // A wide query against a populated GEM2* database has objects, multiple
  // trees, hash sites, and split points: the whole catalogue applies.
  EXPECT_EQ(applied, static_cast<int>(kAllMutationOps.size()));
}

// v3 sweep: same harness, forged images serialized in the compressed format,
// every other round a v3-specific surgical wire operator. The duplicate-value
// alphabet makes repeated value hashes (and therefore non-empty subtree
// tables) common, so the table operators genuinely run.
std::unique_ptr<AuthenticatedDb> MakeV3SweepDb(uint64_t seed) {
  workload::WorkloadOptions wopts;
  wopts.domain_max = 1'000'000;
  wopts.seed = seed;
  workload::WorkloadGenerator gen(wopts);

  DbOptions options;
  options.kind = AdsKind::kGem2Star;
  options.gem2.m = 4;
  options.gem2.smax = 64;
  options.env.gas_limit = 1'000'000'000'000ull;
  options.split_points = gen.SplitPoints(8);
  options.wire_version = core::WireVersion::kV3;

  auto db = std::make_unique<AuthenticatedDb>(options);
  for (const workload::Operation& op : gen.Batch(300)) {
    if (db->Contains(op.object.key)) continue;
    EXPECT_TRUE(
        db->Insert({op.object.key,
                    "dup-" + std::to_string(static_cast<uint64_t>(op.object.key) % 3)})
            .ok);
  }
  return db;
}

TEST(WireV3Adversary, FiveHundredForgeriesAllRejected) {
  SeedReporter seed(6007);
  auto db = MakeV3SweepDb(DeriveSeed(seed, 1));

  AdversaryOptions options;
  options.seed = seed;
  options.mutations = 500;  // the acceptance floor, matching the v2 sweep
  options.wire_version = core::WireVersion::kV3;
  AdversaryReport report = RunAdversarialSweep(*db, options);

  EXPECT_EQ(report.attempted, options.mutations);
  EXPECT_TRUE(report.AllRejected())
      << report.forged() << " forgeries accepted; first: "
      << (report.forgeries.empty() ? "" : report.forgeries[0]);
  EXPECT_EQ(report.rejected_parse + report.rejected_verify + report.canonical_noop,
            report.attempted);
  // Both rejection lines fire: the surgical operators mostly die in the
  // codec, the structured catalogue on the verifier.
  EXPECT_GT(report.rejected_verify, report.attempted / 8);
  EXPECT_GT(report.rejected_parse, report.attempted / 8);

  // The v3-specific operators all ran, alongside the structured catalogue.
  for (WireV3MutationOp op : kAllWireV3MutationOps) {
    EXPECT_GT(report.attempts_by_op[WireV3MutationOpName(op)], 0)
        << WireV3MutationOpName(op);
  }
  EXPECT_GT(report.attempts_by_op[MutationOpName(MutationOp::kShiftRangeBounds)], 0);

  // The adversary must not have perturbed the database.
  EXPECT_TRUE(db->AuthenticatedRange(0, 1'000'000).ok);
}

TEST(WireV3Adversary, ReportReproducesFromSeedAlone) {
  SeedReporter seed(6121);
  auto db = MakeV3SweepDb(DeriveSeed(seed, 1));

  AdversaryOptions options;
  options.seed = seed;
  options.mutations = 120;
  options.wire_version = core::WireVersion::kV3;
  const AdversaryReport first = RunAdversarialSweep(*db, options);
  EXPECT_EQ(RunAdversarialSweep(*db, options), first);

  auto rebuilt = MakeV3SweepDb(DeriveSeed(seed, 1));
  EXPECT_EQ(RunAdversarialSweep(*rebuilt, options), first);
}

// Each v3 surgical operator, applied directly, yields a rejected image.
// GEM2* over a three-string value alphabet gives this range a subtree table
// with several slots, so the table operators apply; the MB-tree response has
// an empty table, so they must decline rather than forge a no-op.
TEST(Mutator, EveryWireV3OperatorProducesARejectedImage) {
  SeedReporter seed(90210);
  DbOptions options;
  options.kind = AdsKind::kGem2Star;
  options.gem2.m = 2;
  options.gem2.smax = 16;
  options.split_points = {100, 200};
  auto db = std::make_unique<AuthenticatedDb>(options);
  for (Key k = 1; k <= 60; ++k) {
    ASSERT_TRUE(db->Insert({k * 5, "value-" + std::to_string(k % 3)}).ok);
  }
  const core::QueryResponse response = db->Query(40, 220);
  ASSERT_TRUE(db->VerifyFor(40, 220, response).ok);

  ResponseMutator mutator(DeriveSeed(seed, 2), core::WireVersion::kV3);
  for (WireV3MutationOp op : kAllWireV3MutationOps) {
    std::optional<WireV3Mutation> m = mutator.ApplyWireV3(op, response);
    ASSERT_TRUE(m.has_value()) << WireV3MutationOpName(op);
    EXPECT_EQ(m->op, op);
    core::VerifiedResult vr = db->VerifyWire(40, 220, m->wire);
    EXPECT_FALSE(vr.ok) << WireV3MutationOpName(op) << " accepted";
  }

  // kTableEntrySwap must parse (the forged hashes are well-formed) and die
  // on the verifier — the attack the table indirection must not enable.
  std::optional<WireV3Mutation> swap =
      mutator.ApplyWireV3(WireV3MutationOp::kTableEntrySwap, response);
  ASSERT_TRUE(swap.has_value());
  auto parsed = core::ParseResponse(swap->wire);
  ASSERT_TRUE(parsed.has_value()) << "table swap should survive the codec";
  EXPECT_FALSE(db->VerifyFor(40, 220, *parsed).ok);

  // Without a table the table operators decline instead of fabricating
  // something unrelated.
  DbOptions mb;
  mb.kind = AdsKind::kMbTree;
  auto mb_db = std::make_unique<AuthenticatedDb>(mb);
  for (Key k = 1; k <= 60; ++k) {
    ASSERT_TRUE(mb_db->Insert({k * 5, "value-" + std::to_string(k % 3)}).ok);
  }
  const core::QueryResponse mb_response = mb_db->Query(40, 220);
  EXPECT_FALSE(mutator.ApplyWireV3(WireV3MutationOp::kTableEntrySwap, mb_response)
                   .has_value());
  // The chain operators still work there.
  std::optional<WireV3Mutation> delta =
      mutator.ApplyWireV3(WireV3MutationOp::kDeltaKeyCorrupt, mb_response);
  ASSERT_TRUE(delta.has_value());
  EXPECT_FALSE(mb_db->VerifyWire(40, 220, delta->wire).ok);
}

TEST(SeedPlumbing, DeriveSeedSeparatesStreams) {
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(1, 1));
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
  EXPECT_EQ(DeriveSeed(99, 7), DeriveSeed(99, 7));
}

}  // namespace
}  // namespace gem2::fault
