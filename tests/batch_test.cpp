// Batch ingestion and intrinsic-fee tests: InsertBatch runs many inserts in a
// single metered transaction — one intrinsic fee, one gasLimit budget.
#include <gtest/gtest.h>

#include "core/authenticated_db.h"

namespace gem2::core {
namespace {

DbOptions Options(gas::Gas base_fee = 0, gas::Gas limit = 1'000'000'000'000ull) {
  DbOptions o;
  o.kind = AdsKind::kGem2;
  o.gem2.m = 2;
  o.gem2.smax = 16;
  o.env.tx_base_fee = base_fee;
  o.env.gas_limit = limit;
  return o;
}

std::vector<Object> MakeBatch(Key from, Key to) {
  std::vector<Object> objects;
  for (Key k = from; k <= to; ++k) objects.push_back({k, "v" + std::to_string(k)});
  return objects;
}

TEST(Batch, SingleTransactionForManyObjects) {
  AuthenticatedDb db(Options());
  const uint64_t txs_before = db.environment().num_transactions();
  chain::TxReceipt r = db.InsertBatch(MakeBatch(1, 25));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(db.environment().num_transactions(), txs_before + 1);
  EXPECT_EQ(db.size(), 25u);

  VerifiedResult vr = db.AuthenticatedRange(1, 25);
  ASSERT_TRUE(vr.ok) << vr.error;
  EXPECT_EQ(vr.objects.size(), 25u);
  db.CheckConsistency();
}

TEST(Batch, EquivalentStateToSingleInserts) {
  AuthenticatedDb batched(Options());
  AuthenticatedDb singles(Options());
  batched.InsertBatch(MakeBatch(1, 40));
  for (const Object& obj : MakeBatch(1, 40)) singles.Insert(obj);
  EXPECT_EQ(batched.ChainDigests(), singles.ChainDigests());
}

TEST(Batch, IntrinsicFeeChargedOncePerTransaction) {
  constexpr gas::Gas kFee = 21'000;
  AuthenticatedDb batched(Options(kFee));
  chain::TxReceipt rb = batched.InsertBatch(MakeBatch(1, 10));
  EXPECT_EQ(rb.breakdown.intrinsic, kFee);

  AuthenticatedDb singles(Options(kFee));
  uint64_t intrinsic_total = 0;
  for (const Object& obj : MakeBatch(1, 10)) {
    intrinsic_total += singles.Insert(obj).breakdown.intrinsic;
  }
  EXPECT_EQ(intrinsic_total, 10 * kFee);

  // With the fee enabled, batching is strictly cheaper for the same work.
  EXPECT_LT(rb.gas_used,
            singles.environment().total_gas_used());
}

TEST(Batch, RejectsDuplicatesUpFront) {
  AuthenticatedDb db(Options());
  db.Insert({5, "v"});
  EXPECT_THROW(db.InsertBatch(MakeBatch(4, 6)), std::invalid_argument);
  std::vector<Object> dup = {{100, "a"}, {100, "b"}};
  EXPECT_THROW(db.InsertBatch(dup), std::invalid_argument);
  // Failed validation leaves no partial state.
  EXPECT_FALSE(db.Contains(4));
  EXPECT_EQ(db.size(), 1u);
}

TEST(Batch, OversizedBatchAbortsAtomically) {
  // A batch too large for the gasLimit aborts as one transaction: nothing
  // lands on-chain or at the SP.
  AuthenticatedDb db(Options(0, gas::kDefaultGasLimit));
  chain::TxReceipt r = db.InsertBatch(MakeBatch(1, 500));
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(db.poisoned());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_FALSE(db.Contains(1));
}

TEST(Batch, EmptyBatchIsANoOpTransaction) {
  AuthenticatedDb db(Options());
  chain::TxReceipt r = db.InsertBatch({});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(db.size(), 0u);
}

}  // namespace
}  // namespace gem2::core
