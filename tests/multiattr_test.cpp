// Multi-attribute boolean query tests: seeded AND/OR equivalence against
// brute-force record filtering (both wire versions, unsharded and sharded
// attribute indexes), server-computed aggregates vs brute force with
// tombstones, empty-conjunct / disjoint-range / out-of-domain edge cases,
// legacy Query(lb, ub) shim byte-identity, owner-surface validation, the
// record codec, and a >= 500-round seeded spec-forgery sweep asserting 100%
// rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/authenticated_db.h"
#include "core/query_spec.h"
#include "core/wire.h"
#include "fault/adversary.h"
#include "multiattr/multiattr_db.h"

namespace gem2::multiattr {
namespace {

using core::AdsKind;
using core::AggregateKind;
using core::BoolOp;
using core::Predicate;
using core::PredicateKind;
using core::QuerySpec;
using core::VerifiedSpecResult;
using core::WireVersion;

MultiAttrOptions SmallOptions(uint32_t num_attrs,
                              WireVersion wire = WireVersion::kV2) {
  MultiAttrOptions opts;
  opts.base.kind = AdsKind::kGem2;
  opts.base.gem2.m = 2;
  opts.base.gem2.smax = 16;
  opts.base.wire_version = wire;
  opts.num_attrs = num_attrs;
  opts.id_bits = 16;
  return opts;
}

/// Seeded population: `n` records, attribute values uniform in [-50, 50],
/// then every fourth record deleted (tombstones in every index).
std::vector<MultiAttrRecord> Populate(MultiAttrDb* db, int n, uint64_t seed,
                                      std::set<int64_t>* deleted) {
  Rng rng(seed);
  std::vector<MultiAttrRecord> records;
  for (int i = 0; i < n; ++i) {
    MultiAttrRecord r;
    r.id = i;
    for (uint32_t k = 0; k < db->num_attributes(); ++k) {
      r.attrs.push_back(rng.UniformInt(-50, 50));
    }
    r.value = "payload-" + std::to_string(i);
    EXPECT_TRUE(db->InsertRecord(r).ok) << i;
    records.push_back(std::move(r));
  }
  for (int i = 0; i < n; i += 4) {
    EXPECT_TRUE(db->DeleteRecord(i).ok) << i;
    deleted->insert(i);
  }
  return records;
}

bool Matches(const MultiAttrRecord& r, const Predicate& p) {
  return r.attrs[p.attr] >= p.lb && r.attrs[p.attr] <= p.ub;
}

/// Brute-force reference: ids of live records satisfying the spec.
std::vector<int64_t> BruteForce(const std::vector<MultiAttrRecord>& records,
                                const std::set<int64_t>& deleted,
                                const QuerySpec& spec) {
  std::vector<int64_t> ids;
  for (const MultiAttrRecord& r : records) {
    if (deleted.count(r.id) != 0) continue;
    bool all = true;
    bool any = false;
    for (const Predicate& p : spec.predicates) {
      if (Matches(r, p)) {
        any = true;
      } else {
        all = false;
      }
    }
    if (spec.op == BoolOp::kAnd ? all : any) ids.push_back(r.id);
  }
  return ids;
}

void ExpectSpecEquals(MultiAttrDb& db,
                      const std::vector<MultiAttrRecord>& records,
                      const std::set<int64_t>& deleted, const QuerySpec& spec) {
  SCOPED_TRACE(core::ToString(spec));
  const std::vector<int64_t> expected = BruteForce(records, deleted, spec);

  // In-memory path and the full wire path must agree with brute force.
  for (bool over_wire : {false, true}) {
    VerifiedSpecResult vr = over_wire
                                ? db.VerifySpecWire(spec, db.SpecWire(spec))
                                : db.AuthenticatedSpec(spec);
    ASSERT_TRUE(vr.ok) << vr.error;
    ASSERT_EQ(vr.objects.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(vr.objects[i].key, expected[i]);
      // The composed value is the canonical record encoding: decode and
      // cross-check the payload against the owner's copy.
      auto rec = DecodeRecord(vr.objects[i].value);
      ASSERT_TRUE(rec.has_value());
      EXPECT_EQ(rec->id, expected[i]);
      EXPECT_EQ(rec->value,
                records[static_cast<size_t>(expected[i])].value);
    }
  }
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

TEST(MultiAttrRecordCodec, RoundTripsAndFailsClosed) {
  MultiAttrRecord r;
  r.id = 77;
  r.attrs = {-5, 0, 123456789};
  r.value = std::string("binary\0payload", 14);
  const std::string encoded = EncodeRecord(r);
  auto decoded = DecodeRecord(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, r);

  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodeRecord(encoded.substr(0, len)).has_value())
        << "prefix " << len;
  }
  EXPECT_FALSE(DecodeRecord(encoded + "x").has_value());

  // Hostile attribute count must not drive allocation.
  std::string bomb = encoded;
  for (size_t i = 8; i < 12; ++i) bomb[i] = '\xff';
  EXPECT_FALSE(DecodeRecord(bomb).has_value());
}

// ---------------------------------------------------------------------------
// Composite key packing
// ---------------------------------------------------------------------------

TEST(MultiAttrKeys, CompositeKeysOrderByValueThenId) {
  MultiAttrDb db(SmallOptions(2));
  EXPECT_EQ(db.AttrMin(), -(Key(1) << 47));
  EXPECT_EQ(db.AttrMax(), (Key(1) << 47) - 1);

  // Primary order: attribute value (negative values sort below positive);
  // secondary: record id.
  EXPECT_LT(db.CompositeKey(-1, 100), db.CompositeKey(0, 0));
  EXPECT_LT(db.CompositeKey(0, 3), db.CompositeKey(0, 4));
  EXPECT_LT(db.CompositeKey(db.AttrMin(), 0), db.CompositeKey(0, 0));
  EXPECT_LT(db.CompositeKey(0, 0), db.CompositeKey(db.AttrMax(), 0));
  // The extremes pack without overflow.
  EXPECT_EQ(db.CompositeKey(db.AttrMin(), 0), kKeyMin);
}

// ---------------------------------------------------------------------------
// Owner surface
// ---------------------------------------------------------------------------

TEST(MultiAttrOwner, ValidatesRecordsAndManagesLifecycle) {
  MultiAttrDb db(SmallOptions(2));
  EXPECT_TRUE(db.InsertRecord({1, {10, 20}, "a"}).ok);

  EXPECT_THROW(db.InsertRecord({1, {0, 0}, "dup"}), std::invalid_argument);
  EXPECT_THROW(db.InsertRecord({2, {0}, "few"}), std::invalid_argument);
  EXPECT_THROW(db.InsertRecord({-1, {0, 0}, "neg"}), std::invalid_argument);
  EXPECT_THROW(db.InsertRecord({(1 << 16) - 1, {0, 0}, "reserved"}),
               std::invalid_argument);
  EXPECT_THROW(db.InsertRecord({3, {db.AttrMax() + 1, 0}, "oob"}),
               std::invalid_argument);

  // Object-level owner ops are not meaningful on records.
  EXPECT_THROW(db.Insert({9, "x"}), std::logic_error);
  EXPECT_THROW(db.Update({9, "x"}), std::logic_error);
  EXPECT_THROW(db.Delete(9), std::logic_error);
  EXPECT_THROW(db.InsertBatch({{9, "x"}}), std::logic_error);

  EXPECT_TRUE(db.Contains(1));
  EXPECT_EQ(db.size(), 1u);
  ASSERT_NE(db.FindRecord(1), nullptr);
  EXPECT_EQ(db.FindRecord(1)->value, "a");

  EXPECT_TRUE(db.UpdateRecord(1, "b").ok);
  EXPECT_EQ(db.FindRecord(1)->value, "b");
  EXPECT_THROW(db.UpdateRecord(42, "?"), std::invalid_argument);

  EXPECT_TRUE(db.DeleteRecord(1).ok);
  EXPECT_FALSE(db.Contains(1));
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.FindRecord(1), nullptr);
  EXPECT_THROW(db.DeleteRecord(1), std::invalid_argument);

  db.CheckConsistency();
}

TEST(MultiAttrOwner, OptionsValidation) {
  MultiAttrOptions zero_attrs = SmallOptions(0);
  EXPECT_THROW(MultiAttrDb{std::move(zero_attrs)}, std::invalid_argument);

  MultiAttrOptions bad_bits = SmallOptions(2);
  bad_bits.id_bits = 41;
  EXPECT_THROW(MultiAttrDb{std::move(bad_bits)}, std::invalid_argument);

  MultiAttrOptions bad_bounds = SmallOptions(2);
  bad_bounds.shard_bounds = {10, 10};
  EXPECT_THROW(MultiAttrDb{std::move(bad_bounds)}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Seeded boolean equivalence vs brute force
// ---------------------------------------------------------------------------

class MultiAttrEquivalence : public ::testing::TestWithParam<WireVersion> {};

TEST_P(MultiAttrEquivalence, BooleanSpecsMatchBruteForce) {
  MultiAttrDb db(SmallOptions(3, GetParam()));
  std::set<int64_t> deleted;
  std::vector<MultiAttrRecord> records = Populate(&db, 120, 0xA11CE, &deleted);
  db.CheckConsistency();

  Rng rng(0xBEEF);
  for (int round = 0; round < 24; ++round) {
    QuerySpec spec;
    spec.op = rng.Chance(0.5) ? BoolOp::kAnd : BoolOp::kOr;
    const int npred = static_cast<int>(rng.Uniform(1, 3));
    for (int p = 0; p < npred; ++p) {
      Key lo = rng.UniformInt(-60, 60);
      Key hi = rng.UniformInt(-60, 60);
      if (hi < lo) std::swap(lo, hi);
      spec.predicates.push_back(Predicate{
          PredicateKind::kRange,
          static_cast<uint32_t>(rng.Uniform(0, db.num_attributes() - 1)), lo,
          hi});
    }
    ExpectSpecEquals(db, records, deleted, spec);
  }
}

TEST_P(MultiAttrEquivalence, EdgeCaseSpecs) {
  MultiAttrDb db(SmallOptions(2, GetParam()));
  std::set<int64_t> deleted;
  std::vector<MultiAttrRecord> records = Populate(&db, 60, 0xD0C5, &deleted);

  // An empty conjunct: no attribute value lives in [200, 300].
  QuerySpec empty_and;
  empty_and.predicates.push_back(Predicate{PredicateKind::kRange, 0, 200, 300});
  empty_and.predicates.push_back(Predicate{PredicateKind::kRange, 1, -50, 50});
  ExpectSpecEquals(db, records, deleted, empty_and);

  QuerySpec empty_or = empty_and;
  empty_or.op = BoolOp::kOr;
  ExpectSpecEquals(db, records, deleted, empty_or);

  // Disjoint ranges over the SAME attribute: AND is provably empty, OR is
  // the union of both sides.
  QuerySpec disjoint;
  disjoint.predicates.push_back(Predicate{PredicateKind::kRange, 0, -50, -1});
  disjoint.predicates.push_back(Predicate{PredicateKind::kRange, 0, 1, 50});
  ExpectSpecEquals(db, records, deleted, disjoint);
  EXPECT_TRUE(BruteForce(records, deleted, disjoint).empty());
  QuerySpec disjoint_or = disjoint;
  disjoint_or.op = BoolOp::kOr;
  ExpectSpecEquals(db, records, deleted, disjoint_or);

  // Ranges that miss the attribute domain entirely map to the reserved
  // recordless singleton and verify as provably empty.
  QuerySpec beyond = QuerySpec::Range(db.AttrMax() + 1, kKeyMax);
  ExpectSpecEquals(db, records, deleted, beyond);
  QuerySpec below = QuerySpec::Range(kKeyMin, db.AttrMin() - 1);
  ExpectSpecEquals(db, records, deleted, below);

  // Full-domain point and span queries.
  ExpectSpecEquals(db, records, deleted, QuerySpec::Range(kKeyMin, kKeyMax, 1));
  ExpectSpecEquals(db, records, deleted,
                   QuerySpec::Range(records[0].attrs[0], records[0].attrs[0]));
}

INSTANTIATE_TEST_SUITE_P(WireVersions, MultiAttrEquivalence,
                         ::testing::Values(WireVersion::kV2, WireVersion::kV3));

// ---------------------------------------------------------------------------
// Server-computed aggregates
// ---------------------------------------------------------------------------

TEST(MultiAttrAggregates, MatchBruteForceAndShipNoObjects) {
  MultiAttrDb db(SmallOptions(2));
  std::set<int64_t> deleted;
  std::vector<MultiAttrRecord> records = Populate(&db, 90, 0xA66, &deleted);

  Rng rng(0x5EED);
  for (int round = 0; round < 12; ++round) {
    Key lo = rng.UniformInt(-60, 60);
    Key hi = rng.UniformInt(-60, 60);
    if (hi < lo) std::swap(lo, hi);
    const uint32_t attr = static_cast<uint32_t>(rng.Uniform(0, 1));

    // Brute-force aggregates over live records' attribute values.
    uint64_t count = 0;
    long long sum = 0;
    std::optional<Key> min_v, max_v;
    for (const MultiAttrRecord& r : records) {
      if (deleted.count(r.id) != 0) continue;
      const Key v = r.attrs[attr];
      if (v < lo || v > hi) continue;
      ++count;
      sum += v;
      min_v = min_v.has_value() ? std::min(*min_v, v) : v;
      max_v = max_v.has_value() ? std::max(*max_v, v) : v;
    }

    for (AggregateKind kind : {AggregateKind::kCount, AggregateKind::kSum,
                               AggregateKind::kMin, AggregateKind::kMax}) {
      QuerySpec spec = QuerySpec::Range(lo, hi, attr);
      spec.aggregate = kind;
      SCOPED_TRACE(core::ToString(spec));

      // The answer ships boundary structure only: no result objects in any
      // tree of the conjunct.
      const core::SpecResponse response = db.ExecuteSpec(spec);
      ASSERT_EQ(response.conjuncts.size(), 1u);
      for (const core::TreeResultSet& tree : response.conjuncts[0].trees) {
        EXPECT_TRUE(tree.objects.empty());
      }
      for (const core::ShardSlice& slice : response.conjuncts[0].slices) {
        for (const core::TreeResultSet& tree : slice.response.trees) {
          EXPECT_TRUE(tree.objects.empty());
        }
      }

      VerifiedSpecResult vr = db.VerifySpecWire(spec, db.SpecWire(spec));
      ASSERT_TRUE(vr.ok) << vr.error;
      EXPECT_TRUE(vr.objects.empty());
      ASSERT_TRUE(vr.aggregates.has_value());
      EXPECT_EQ(vr.aggregates->count, count);
      EXPECT_EQ(vr.aggregates->min_key, min_v);
      EXPECT_EQ(vr.aggregates->max_key, max_v);
      if (count > 0) {
        ASSERT_TRUE(vr.aggregates->sum.has_value());
        EXPECT_EQ(*vr.aggregates->sum, sum);
      } else {
        EXPECT_FALSE(vr.aggregates->sum.has_value());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded attribute indexes
// ---------------------------------------------------------------------------

TEST(MultiAttrSharded, ShardedIndexesMatchUnsharded) {
  MultiAttrOptions sharded_opts = SmallOptions(2);
  sharded_opts.shard_bounds = {-20, 0, 20};
  MultiAttrDb sharded(std::move(sharded_opts));
  MultiAttrDb flat(SmallOptions(2));
  EXPECT_EQ(sharded.BackendName(), "multiattr(2)/sharded(4)/GEM2-tree");

  std::set<int64_t> deleted_s, deleted_f;
  std::vector<MultiAttrRecord> records =
      Populate(&sharded, 80, 0xF00D, &deleted_s);
  {
    std::vector<MultiAttrRecord> same = Populate(&flat, 80, 0xF00D, &deleted_f);
    ASSERT_EQ(same, records);
  }
  sharded.CheckConsistency();

  // Every attribute's shard contracts anchor at one shared header.
  auto states = sharded.ReadChainState();
  ASSERT_EQ(states.size(), 2u * 4u);
  for (const auto& s : states) {
    EXPECT_EQ(s.header.Digest(), states[0].header.Digest());
  }

  Rng rng(0xCAFE);
  for (int round = 0; round < 10; ++round) {
    QuerySpec spec;
    spec.op = rng.Chance(0.5) ? BoolOp::kAnd : BoolOp::kOr;
    const int npred = static_cast<int>(rng.Uniform(1, 2));
    for (int p = 0; p < npred; ++p) {
      Key lo = rng.UniformInt(-60, 60);
      Key hi = rng.UniformInt(-60, 60);
      if (hi < lo) std::swap(lo, hi);
      spec.predicates.push_back(
          Predicate{PredicateKind::kRange,
                    static_cast<uint32_t>(rng.Uniform(0, 1)), lo, hi});
    }
    SCOPED_TRACE(core::ToString(spec));
    ExpectSpecEquals(sharded, records, deleted_s, spec);

    VerifiedSpecResult a = sharded.AuthenticatedSpec(spec);
    VerifiedSpecResult b = flat.AuthenticatedSpec(spec);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    ASSERT_EQ(a.objects.size(), b.objects.size());
    for (size_t i = 0; i < a.objects.size(); ++i) {
      EXPECT_EQ(a.objects[i].key, b.objects[i].key);
      EXPECT_EQ(a.objects[i].value, b.objects[i].value);
    }
  }

  // Aggregates work through sharded indexes too (boundary collection across
  // slices).
  QuerySpec count = QuerySpec::Range(-30, 30, 1);
  count.aggregate = AggregateKind::kCount;
  VerifiedSpecResult vr = sharded.AuthenticatedSpec(count);
  ASSERT_TRUE(vr.ok) << vr.error;
  ASSERT_TRUE(vr.aggregates.has_value());
  uint64_t expected = 0;
  for (const MultiAttrRecord& r : records) {
    if (deleted_s.count(r.id) == 0 && r.attrs[1] >= -30 && r.attrs[1] <= 30) {
      ++expected;
    }
  }
  EXPECT_EQ(vr.aggregates->count, expected);
}

// ---------------------------------------------------------------------------
// Legacy shim byte-identity
// ---------------------------------------------------------------------------

TEST(LegacyShim, SinglePredicateSpecIsByteIdenticalToLegacyQuery) {
  for (WireVersion version : {WireVersion::kV2, WireVersion::kV3}) {
    core::DbOptions opts;
    opts.kind = AdsKind::kGem2;
    opts.gem2.m = 2;
    opts.gem2.smax = 16;
    opts.wire_version = version;
    core::AuthenticatedDb db(opts);
    for (Key k = 0; k < 40; ++k) db.Insert({k * 3, "v" + std::to_string(k)});
    db.Delete(9);

    for (auto [lb, ub] : std::vector<std::pair<Key, Key>>{
             {0, 120}, {7, 7}, {-10, 5}, {200, 300}}) {
      const core::SpecResponse spec_answer =
          db.ExecuteSpec(QuerySpec::Range(lb, ub));
      ASSERT_EQ(spec_answer.conjuncts.size(), 1u);
      // The conjunct's image is bit-identical to the pre-QuerySpec wire:
      // same query machinery, same serialization, gas untouched.
      EXPECT_EQ(core::SerializeResponse(spec_answer.conjuncts[0], version),
                core::SerializeResponse(db.Query(lb, ub), version));
    }
  }
}

// ---------------------------------------------------------------------------
// Spec forgery sweep: >= 500 seeded forgeries, 100% rejection
// ---------------------------------------------------------------------------

TEST(MultiAttrForgery, SpecSweepRejectsEverything) {
  for (WireVersion version : {WireVersion::kV2, WireVersion::kV3}) {
    MultiAttrDb db(SmallOptions(2, version));
    std::set<int64_t> deleted;
    std::vector<MultiAttrRecord> records = Populate(&db, 70, 0xDEAD, &deleted);

    fault::SpecAdversaryOptions opts;
    opts.seed = 7;
    opts.mutations = 500;
    opts.wire_version = version;
    // Cover every composition the operators target: AND/OR pairs over
    // distinct ranges (conjunct swapping), single predicates (echo
    // tampering), and aggregates (boundary tampering).
    {
      QuerySpec both;
      both.predicates.push_back(Predicate{PredicateKind::kRange, 0, -30, 10});
      both.predicates.push_back(Predicate{PredicateKind::kRange, 1, -10, 30});
      opts.specs.push_back(both);
      QuerySpec either = both;
      either.op = BoolOp::kOr;
      opts.specs.push_back(either);
      opts.specs.push_back(QuerySpec::Range(-50, 50, 1));
      QuerySpec count = QuerySpec::Range(-40, 40);
      count.aggregate = AggregateKind::kCount;
      opts.specs.push_back(count);
      QuerySpec sum = QuerySpec::Range(-25, 45, 1);
      sum.aggregate = AggregateKind::kSum;
      opts.specs.push_back(sum);
    }

    const fault::AdversaryReport report = fault::RunSpecAdversarialSweep(db, opts);
    EXPECT_EQ(report.attempted, 500);
    EXPECT_TRUE(report.AllRejected()) << report.forgeries.size()
                                      << " forgeries accepted, first: "
                                      << (report.forgeries.empty()
                                              ? ""
                                              : report.forgeries.front());
    EXPECT_EQ(report.rejected_parse + report.rejected_verify, 500);
    // Every operator family got rounds in.
    EXPECT_GE(report.attempts_by_op.size(), 6u);

    // Determinism: the same (db state, options) reproduce the same report.
    EXPECT_EQ(fault::RunSpecAdversarialSweep(db, opts), report);
  }
}

}  // namespace
}  // namespace gem2::multiattr
