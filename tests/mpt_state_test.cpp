// End-to-end tests with the Ethereum-style Merkle Patricia Trie as the block
// state commitment (EnvironmentOptions::state_commitment = kPatriciaTrie):
// VO_chain proofs become MPT inclusion proofs, and the whole authenticated
// query pipeline must keep working — and keep rejecting tampering.
#include <gtest/gtest.h>

#include "core/authenticated_db.h"

namespace gem2::core {
namespace {

DbOptions MptOptions(AdsKind kind) {
  DbOptions o;
  o.kind = kind;
  o.gem2.m = 2;
  o.gem2.smax = 16;
  o.env.state_commitment = chain::StateCommitment::kPatriciaTrie;
  o.env.gas_limit = 1'000'000'000'000ull;
  if (kind == AdsKind::kGem2Star) o.split_points = {500};
  return o;
}

class MptStateTest : public ::testing::TestWithParam<AdsKind> {};

TEST_P(MptStateTest, EndToEndWithPatriciaCommitment) {
  AuthenticatedDb db(MptOptions(GetParam()));
  for (Key k = 1; k <= 120; ++k) db.Insert({k * 7, "v" + std::to_string(k)});
  db.Update({7, "updated"});
  db.Delete(14);

  VerifiedResult vr = db.AuthenticatedRange(1, 500);
  ASSERT_TRUE(vr.ok) << vr.error;
  EXPECT_EQ(vr.objects.size(), 70u);  // keys 7..497 step 7, minus deleted 14
  EXPECT_EQ(vr.tombstones_filtered, 1u);
  EXPECT_EQ(vr.objects[0].value, "updated");
  EXPECT_GT(vr.vo_chain_bytes, 0u);
  db.CheckConsistency();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MptStateTest,
                         ::testing::Values(AdsKind::kMbTree, AdsKind::kSmbTree,
                                           AdsKind::kGem2, AdsKind::kGem2Star),
                         [](const auto& info) {
                           switch (info.param) {
                             case AdsKind::kMbTree:
                               return "MbTree";
                             case AdsKind::kSmbTree:
                               return "SmbTree";
                             case AdsKind::kLsm:
                               return "Lsm";
                             case AdsKind::kGem2:
                               return "Gem2";
                             case AdsKind::kGem2Star:
                               return "Gem2Star";
                           }
                           return "Unknown";
                         });

TEST(MptState, TamperedDigestRejected) {
  AuthenticatedDb db(MptOptions(AdsKind::kGem2));
  for (Key k = 1; k <= 40; ++k) db.Insert({k, "v"});
  QueryResponse r = db.Query(1, 40);

  chain::AuthenticatedState state = db.environment().ReadAuthenticatedState("ads");
  ASSERT_EQ(state.commitment, chain::StateCommitment::kPatriciaTrie);
  ASSERT_FALSE(state.digests.empty());
  EXPECT_FALSE(state.digests[0].mpt_proof.empty());
  EXPECT_TRUE(state.digests[0].proof.empty());

  // Honest state verifies; a flipped digest or proof byte does not.
  EXPECT_TRUE(chain::Environment::VerifyAuthenticatedState(state));
  chain::AuthenticatedState bad = state;
  bad.digests[0].entry.digest[5] ^= 1;
  EXPECT_FALSE(chain::Environment::VerifyAuthenticatedState(bad));
  chain::AuthenticatedState bad2 = state;
  bad2.digests[0].mpt_proof[0][3] ^= 1;
  EXPECT_FALSE(chain::Environment::VerifyAuthenticatedState(bad2));

  VerifiedResult vr = VerifyResponse(state, true, AdsKind::kGem2, r);
  EXPECT_TRUE(vr.ok) << vr.error;
  VerifiedResult vr_bad = VerifyResponse(bad, true, AdsKind::kGem2, r);
  EXPECT_FALSE(vr_bad.ok);
}

TEST(MptState, StaleSnapshotRejected) {
  AuthenticatedDb db(MptOptions(AdsKind::kGem2));
  for (Key k = 1; k <= 30; ++k) db.Insert({k, "v"});
  QueryResponse stale = db.Query(1, 30);
  db.Update({1, "fresh"});
  EXPECT_FALSE(db.Verify(stale).ok);
  QueryResponse fresh = db.Query(1, 30);
  EXPECT_TRUE(db.Verify(fresh).ok);
}

}  // namespace
}  // namespace gem2::core
