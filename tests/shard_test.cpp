// Sharded multi-contract RangeStore tests: seeded equivalence against an
// unsharded AuthenticatedDb (merged verified results element-for-element
// equal, S in {1,2,4,8}, uniform and zipfian, with deletes), per-shard gas
// neutrality, scatter-plan / composite-forgery rejection, and options
// validation.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"
#include "core/authenticated_db.h"
#include "core/range_store.h"
#include "core/wire.h"
#include "fault/mutator.h"
#include "shard/sharded_db.h"
#include "workload/workload.h"

namespace gem2::shard {
namespace {

using core::AdsKind;
using core::AuthenticatedDb;
using core::DbOptions;
using core::QueryResponse;
using core::VerifiedResult;

DbOptions SmallGem2Base() {
  DbOptions base;
  base.kind = AdsKind::kGem2;
  base.gem2.m = 2;
  base.gem2.smax = 16;
  return base;
}

// ---------------------------------------------------------------------------
// Routing and introspection
// ---------------------------------------------------------------------------

TEST(ShardRouting, KeysRouteByPartitionBounds) {
  ShardOptions opts;
  opts.base = SmallGem2Base();
  opts.bounds = {100, 200, 300};
  ShardedDb db(std::move(opts));

  ASSERT_EQ(db.num_shards(), 4u);
  EXPECT_EQ(db.BackendName(), "sharded(4)/GEM2-tree");

  // Shard i owns [bounds[i-1], bounds[i] - 1].
  EXPECT_EQ(db.ShardOf(0), 0u);
  EXPECT_EQ(db.ShardOf(99), 0u);
  EXPECT_EQ(db.ShardOf(100), 1u);
  EXPECT_EQ(db.ShardOf(199), 1u);
  EXPECT_EQ(db.ShardOf(200), 2u);
  EXPECT_EQ(db.ShardOf(299), 2u);
  EXPECT_EQ(db.ShardOf(300), 3u);
  EXPECT_EQ(db.ShardOf(kKeyMax), 3u);

  // Writes land in the owning shard's contract only.
  db.Insert({50, "a"});
  db.Insert({150, "b"});
  db.Insert({151, "c"});
  db.Insert({400, "d"});
  EXPECT_EQ(db.shard(0).size(), 1u);
  EXPECT_EQ(db.shard(1).size(), 2u);
  EXPECT_EQ(db.shard(2).size(), 0u);
  EXPECT_EQ(db.shard(3).size(), 1u);
  EXPECT_EQ(db.size(), 4u);
  EXPECT_TRUE(db.Contains(150));
  EXPECT_FALSE(db.Contains(152));
  db.CheckConsistency();

  // All shard contracts anchor at one header of the one shared chain.
  auto states = db.ReadChainState();
  ASSERT_EQ(states.size(), 4u);
  for (size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ(states[i].contract, ShardedDb::ShardContractName(i));
    EXPECT_EQ(states[i].header.Digest(), states[0].header.Digest());
  }
}

TEST(ShardBoundsGeneration, ExactCountStrictlyAscendingForBothDistributions) {
  for (auto dist : {workload::KeyDistribution::kUniform,
                    workload::KeyDistribution::kZipfian}) {
    workload::WorkloadOptions wopts;
    wopts.distribution = dist;
    wopts.seed = 7;
    workload::WorkloadGenerator gen(wopts);
    for (size_t shards : {1u, 2u, 4u, 8u, 16u}) {
      auto bounds = gen.ShardBounds(shards);
      ASSERT_EQ(bounds.size(), shards - 1) << "S=" << shards;
      for (size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]) << "S=" << shards;
      if (!bounds.empty()) {
        EXPECT_GT(bounds.front(), wopts.domain_min);
        EXPECT_LE(bounds.back(), wopts.domain_max);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Equivalence: sharded == unsharded, element for element
// ---------------------------------------------------------------------------

struct EquivParam {
  size_t shards;
  workload::KeyDistribution dist;
};

class ShardEquivalenceTest : public ::testing::TestWithParam<EquivParam> {};

TEST_P(ShardEquivalenceTest, VerifiedResultsMatchUnsharded) {
  const EquivParam param = GetParam();

  workload::WorkloadOptions wopts;
  wopts.distribution = param.dist;
  wopts.domain_max = 200'000;
  wopts.update_ratio = 0.25;
  wopts.seed = 9000 + param.shards;
  workload::WorkloadGenerator gen(wopts);

  ShardOptions sopts;
  sopts.base = SmallGem2Base();
  sopts.bounds = gen.ShardBounds(param.shards);
  ShardedDb sharded(std::move(sopts));
  AuthenticatedDb unsharded(SmallGem2Base());

  // Identical op stream into both stores, through the common interface.
  core::RangeStore& a = sharded;
  core::RangeStore& b = unsharded;
  for (const auto& op : gen.Batch(240)) {
    if (op.type == workload::Operation::Type::kInsert) {
      ASSERT_TRUE(a.Insert(op.object).ok);
      ASSERT_TRUE(b.Insert(op.object).ok);
    } else {
      ASSERT_TRUE(a.Update(op.object).ok);
      ASSERT_TRUE(b.Update(op.object).ok);
    }
  }
  const auto& keys = gen.inserted_keys();
  for (size_t i = 0; i < keys.size(); i += 7) {
    ASSERT_TRUE(a.Delete(keys[i]).ok);
    ASSERT_TRUE(b.Delete(keys[i]).ok);
  }
  EXPECT_EQ(a.size(), b.size());
  sharded.CheckConsistency();

  auto check_range = [&](Key lb, Key ub) {
    VerifiedResult vs = a.AuthenticatedRange(lb, ub);
    VerifiedResult vu = b.AuthenticatedRange(lb, ub);
    ASSERT_TRUE(vs.ok) << vs.error;
    ASSERT_TRUE(vu.ok) << vu.error;
    EXPECT_EQ(vs.objects, vu.objects);
    EXPECT_EQ(vs.tombstones_filtered, vu.tombstones_filtered);

    // The same answer survives the wire: serialize, parse, verify.
    VerifiedResult via_wire = a.VerifyWire(lb, ub, a.QueryWire(lb, ub));
    ASSERT_TRUE(via_wire.ok) << via_wire.error;
    EXPECT_EQ(via_wire.objects, vs.objects);
  };

  for (double sel : {0.01, 0.05, 0.10}) {
    auto q = gen.NextQuery(sel);
    check_range(q.lb, q.ub);
  }
  check_range(wopts.domain_min, wopts.domain_max);  // crosses every seam

  // Verification against pre-fetched chain state (cached-VO_chain client).
  QueryResponse full = a.Query(wopts.domain_min, wopts.domain_max);
  VerifiedResult against = sharded.VerifyAgainst(sharded.ReadChainState(), full);
  ASSERT_TRUE(against.ok) << against.error;
  EXPECT_EQ(against.objects, b.AuthenticatedRange(wopts.domain_min, wopts.domain_max).objects);

  // Scattering on a pool changes nothing about the answer.
  common::ThreadPool pool(2);
  core::SpPoolScope scope(a, &pool);
  VerifiedResult pooled = a.AuthenticatedRange(wopts.domain_min, wopts.domain_max);
  ASSERT_TRUE(pooled.ok) << pooled.error;
  EXPECT_EQ(pooled.objects, against.objects);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShardEquivalenceTest,
    ::testing::Values(EquivParam{1, workload::KeyDistribution::kUniform},
                      EquivParam{2, workload::KeyDistribution::kUniform},
                      EquivParam{4, workload::KeyDistribution::kUniform},
                      EquivParam{8, workload::KeyDistribution::kUniform},
                      EquivParam{1, workload::KeyDistribution::kZipfian},
                      EquivParam{2, workload::KeyDistribution::kZipfian},
                      EquivParam{4, workload::KeyDistribution::kZipfian},
                      EquivParam{8, workload::KeyDistribution::kZipfian}),
    [](const auto& info) {
      return std::string(info.param.dist == workload::KeyDistribution::kUniform
                             ? "Uniform"
                             : "Zipfian") +
             "S" + std::to_string(info.param.shards);
    });

// ---------------------------------------------------------------------------
// Gas neutrality: a shard's contract meters exactly like an unsharded
// contract holding the same keys (fig7-style op stream)
// ---------------------------------------------------------------------------

TEST(ShardGas, PerShardGasBitIdenticalToUnshardedSameKeys) {
  workload::WorkloadOptions wopts;
  wopts.domain_max = 100'000;
  wopts.seed = 31;
  workload::WorkloadGenerator gen(wopts);

  const size_t kShards = 4;
  ShardOptions sopts;
  sopts.base = SmallGem2Base();
  sopts.bounds = gen.ShardBounds(kShards);
  ShardedDb sharded(sopts);

  // One unsharded reference db per shard, fed exactly the keys that shard
  // owns. Default contract name on purpose: storage gas is name-independent.
  std::vector<std::unique_ptr<AuthenticatedDb>> refs;
  for (size_t i = 0; i < kShards; ++i)
    refs.push_back(std::make_unique<AuthenticatedDb>(SmallGem2Base()));

  auto expect_same_gas = [](const chain::TxReceipt& got,
                            const chain::TxReceipt& want, Key key) {
    ASSERT_TRUE(got.ok);
    ASSERT_TRUE(want.ok);
    EXPECT_EQ(got.gas_used, want.gas_used) << "key " << key;
  };

  auto ops = gen.Batch(160);
  for (const auto& op : ops) {
    size_t s = sharded.ShardOf(op.object.key);
    expect_same_gas(sharded.Insert(op.object), refs[s]->Insert(op.object),
                    op.object.key);
  }
  // Updates and deletes over a sample of the inserted population.
  const auto& keys = gen.inserted_keys();
  for (size_t i = 0; i < keys.size(); i += 5) {
    size_t s = sharded.ShardOf(keys[i]);
    Object updated{keys[i], "updated-value"};
    expect_same_gas(sharded.Update(updated), refs[s]->Update(updated), keys[i]);
  }
  for (size_t i = 2; i < keys.size(); i += 9) {
    size_t s = sharded.ShardOf(keys[i]);
    expect_same_gas(sharded.Delete(keys[i]), refs[s]->Delete(keys[i]), keys[i]);
  }
}

// ---------------------------------------------------------------------------
// Composite forgeries: the scatter-plan check plus per-slice verification
// rejects every structured mutation
// ---------------------------------------------------------------------------

class ShardFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::WorkloadOptions wopts;
    wopts.domain_max = 50'000;
    wopts.seed = 77;
    gen_.emplace(wopts);

    ShardOptions sopts;
    sopts.base = SmallGem2Base();
    sopts.bounds = gen_->ShardBounds(4);
    db_ = std::make_unique<ShardedDb>(std::move(sopts));
    for (const auto& op : gen_->Batch(120)) ASSERT_TRUE(db_->Insert(op.object).ok);

    lb_ = 0;
    ub_ = wopts.domain_max;
    response_ = db_->Query(lb_, ub_);
    ASSERT_EQ(response_.slices.size(), 4u);
    ASSERT_TRUE(db_->VerifyFor(lb_, ub_, response_).ok);
  }

  std::optional<workload::WorkloadGenerator> gen_;
  std::unique_ptr<ShardedDb> db_;
  Key lb_ = 0, ub_ = 0;
  QueryResponse response_;
};

TEST_F(ShardFaultTest, EveryCompositeOperatorIsRejected) {
  fault::ResponseMutator mutator(4242);
  for (auto op : fault::kAllCompositeMutationOps) {
    int applied = 0;
    for (int trial = 0; trial < 40; ++trial) {
      auto m = mutator.ApplyComposite(op, response_);
      if (!m) continue;
      ++applied;
      VerifiedResult vr = db_->VerifyWire(lb_, ub_, m->wire);
      EXPECT_FALSE(vr.ok) << fault::CompositeMutationOpName(op) << " trial "
                          << trial << " accepted: " << vr.error;
      EXPECT_FALSE(vr.error.empty());
    }
    EXPECT_GT(applied, 0) << fault::CompositeMutationOpName(op);
  }
}

TEST_F(ShardFaultTest, SweepOfUniformCompositeMutationsIsFullyRejected) {
  // Strict 100% rejection: composite operators are all semantic.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    fault::ResponseMutator mutator(seed * 1000003);
    for (int trial = 0; trial < 25; ++trial) {
      fault::CompositeMutation m = mutator.MutateComposite(response_);
      VerifiedResult vr = db_->VerifyWire(lb_, ub_, m.wire);
      EXPECT_FALSE(vr.ok) << fault::CompositeMutationOpName(m.op) << " seed "
                          << seed << " trial " << trial;
    }
  }
}

TEST_F(ShardFaultTest, CrossShapeResponsesAreRejected) {
  // A single (unsharded-shape) response never verifies against a sharded
  // client: it does not match the scatter plan.
  AuthenticatedDb single(SmallGem2Base());
  for (const auto& obj : db_->VerifyFor(lb_, ub_, response_).objects)
    ASSERT_TRUE(single.Insert(obj).ok);
  QueryResponse flat = single.Query(lb_, ub_);
  VerifiedResult vr = db_->VerifyFor(lb_, ub_, flat);
  EXPECT_FALSE(vr.ok);

  // And a composite never verifies against a single-contract client.
  VerifiedResult reverse = single.VerifyFor(lb_, ub_, response_);
  EXPECT_FALSE(reverse.ok);
  EXPECT_NE(reverse.error.find("composite"), std::string::npos);
}

TEST_F(ShardFaultTest, TruncatedAndVersionSkewedWireImagesFailVerification) {
  Bytes wire = db_->QueryWire(lb_, ub_);
  ASSERT_FALSE(wire.empty());

  Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(wire.size() / 2));
  VerifiedResult vr = db_->VerifyWire(lb_, ub_, truncated);
  EXPECT_FALSE(vr.ok);
  EXPECT_EQ(vr.error, "malformed wire image");

  Bytes skewed = wire;
  skewed[0] = 1;  // an older format version
  vr = db_->VerifyWire(lb_, ub_, skewed);
  EXPECT_FALSE(vr.ok);
  EXPECT_EQ(vr.error, "malformed wire image");
}

// ---------------------------------------------------------------------------
// Options validation
// ---------------------------------------------------------------------------

TEST(DbOptionsValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(DbOptions{}.Validate());
}

TEST(DbOptionsValidate, RejectsEmptyContractName) {
  DbOptions o;
  o.contract_name.clear();
  EXPECT_THROW(o.Validate(), std::invalid_argument);
}

TEST(DbOptionsValidate, RejectsFanoutBelowTwo) {
  DbOptions o;
  o.gem2.fanout = 1;
  EXPECT_THROW(o.Validate(), std::invalid_argument);
}

TEST(DbOptionsValidate, RejectsZeroIndexMergeSlots) {
  DbOptions o;
  o.gem2.m = 0;
  EXPECT_THROW(o.Validate(), std::invalid_argument);
}

TEST(DbOptionsValidate, RejectsZeroMergeThreshold) {
  DbOptions o;
  o.gem2.smax = 0;
  EXPECT_THROW(o.Validate(), std::invalid_argument);
}

TEST(DbOptionsValidate, RejectsGem2StarWithoutSplitPoints) {
  DbOptions o;
  o.kind = AdsKind::kGem2Star;
  EXPECT_THROW(o.Validate(), std::invalid_argument);
}

TEST(DbOptionsValidate, RejectsUnsortedSplitPoints) {
  DbOptions o;
  o.kind = AdsKind::kGem2Star;
  o.split_points = {200, 100};
  EXPECT_THROW(o.Validate(), std::invalid_argument);
  o.split_points = {100, 100};
  EXPECT_THROW(o.Validate(), std::invalid_argument);
}

TEST(DbOptionsValidate, RejectsZeroGasLimit) {
  DbOptions o;
  o.env.gas_limit = 0;
  EXPECT_THROW(o.Validate(), std::invalid_argument);
}

TEST(DbOptionsValidate, RejectsZeroTxsPerBlock) {
  DbOptions o;
  o.env.txs_per_block = 0;
  EXPECT_THROW(o.Validate(), std::invalid_argument);
}

TEST(DbOptionsValidate, ConstructorValidates) {
  DbOptions o;
  o.gem2.m = 0;
  EXPECT_THROW(AuthenticatedDb db(o), std::invalid_argument);
}

TEST(ShardOptionsValidate, AcceptsSingleShard) {
  ShardOptions o;
  o.base = SmallGem2Base();
  EXPECT_NO_THROW(o.Validate());
}

TEST(ShardOptionsValidate, RejectsUnsortedBounds) {
  ShardOptions o;
  o.base = SmallGem2Base();
  o.bounds = {200, 100};
  EXPECT_THROW(o.Validate(), std::invalid_argument);
  o.bounds = {100, 100};
  EXPECT_THROW(o.Validate(), std::invalid_argument);
}

TEST(ShardOptionsValidate, RejectsCallerSuppliedSharedEnv) {
  chain::Environment env{chain::EnvironmentOptions{}};
  ShardOptions o;
  o.base = SmallGem2Base();
  o.base.shared_env = &env;
  EXPECT_THROW(o.Validate(), std::invalid_argument);
}

TEST(ShardOptionsValidate, PropagatesBaseValidation) {
  ShardOptions o;
  o.base = SmallGem2Base();
  o.base.gem2.smax = 0;
  EXPECT_THROW(ShardedDb db(std::move(o)), std::invalid_argument);
}

}  // namespace
}  // namespace gem2::shard
