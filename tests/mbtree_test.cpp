// Merkle B+-tree tests: structure, digests, gas model, bulk insertion, and
// authenticated range queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "ads/verify.h"
#include "crypto/digest.h"
#include "gas/meter.h"
#include "mbtree/mbtree.h"

namespace gem2::mbtree {
namespace {

Hash Vh(Key k) { return crypto::ValueHash("value-" + std::to_string(k)); }

std::vector<Key> ShuffledKeys(size_t n, uint64_t seed, Key stride = 3) {
  std::vector<Key> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(static_cast<Key>(i) * stride + 1);
  std::mt19937_64 rng(seed);
  std::shuffle(keys.begin(), keys.end(), rng);
  return keys;
}

std::vector<Object> ObjectsFor(const ads::EntryList& entries) {
  std::vector<Object> objects;
  for (const ads::Entry& e : entries) {
    objects.push_back({e.key, "value-" + std::to_string(e.key)});
  }
  return objects;
}

TEST(MbTree, EmptyTree) {
  MbTree tree(4);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.root_digest(), crypto::EmptyTreeDigest());
  EXPECT_FALSE(tree.Contains(1));
  tree.CheckInvariants();
}

TEST(MbTree, SingleInsert) {
  MbTree tree(4);
  tree.Insert(10, Vh(10));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Contains(10));
  EXPECT_EQ(tree.lo(), 10);
  EXPECT_EQ(tree.hi(), 10);
  tree.CheckInvariants();
}

TEST(MbTree, DuplicateInsertThrows) {
  MbTree tree(4);
  tree.Insert(10, Vh(10));
  EXPECT_THROW(tree.Insert(10, Vh(10)), std::invalid_argument);
}

TEST(MbTree, UpdateMissingKeyReturnsFalse) {
  MbTree tree(4);
  tree.Insert(10, Vh(10));
  EXPECT_FALSE(tree.Update(11, Vh(11)));
}

TEST(MbTree, UpdateChangesRoot) {
  MbTree tree(4);
  for (Key k : ShuffledKeys(50, 7)) tree.Insert(k, Vh(k));
  Hash before = tree.root_digest();
  ASSERT_TRUE(tree.Update(1, crypto::ValueHash("new-value")));
  EXPECT_NE(tree.root_digest(), before);
  tree.CheckInvariants();
}

TEST(MbTree, InsertionOrderIndependentDigest) {
  // Same key set, different insertion orders, same entries -> possibly
  // different shapes but identical sorted contents.
  MbTree a(4);
  MbTree b(4);
  for (Key k : ShuffledKeys(200, 1)) a.Insert(k, Vh(k));
  for (Key k : ShuffledKeys(200, 2)) b.Insert(k, Vh(k));
  EXPECT_EQ(a.AllEntries(), b.AllEntries());
}

class MbTreeSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(MbTreeSizes, InvariantsAndOrderAfterRandomInserts) {
  const size_t n = GetParam();
  MbTree tree(4);
  for (Key k : ShuffledKeys(n, n)) tree.Insert(k, Vh(k));
  EXPECT_EQ(tree.size(), n);
  tree.CheckInvariants();
  ads::EntryList all = tree.AllEntries();
  ASSERT_EQ(all.size(), n);
  for (size_t i = 1; i < all.size(); ++i) EXPECT_LT(all[i - 1].key, all[i].key);
}

TEST_P(MbTreeSizes, RangeQueriesVerify) {
  const size_t n = GetParam();
  MbTree tree(4);
  for (Key k : ShuffledKeys(n, n + 1)) tree.Insert(k, Vh(k));
  const Hash root = tree.root_digest();

  const std::pair<Key, Key> ranges[] = {
      {0, 10}, {1, 1}, {5, 50}, {-100, -1}, {0, 1'000'000}, {17, 18}};
  for (auto [lb, ub] : ranges) {
    ads::EntryList result;
    ads::TreeVo vo = tree.RangeQuery(lb, ub, &result);
    // Result must equal the brute-force filter.
    ads::EntryList expect;
    for (const ads::Entry& e : tree.AllEntries()) {
      if (e.key >= lb && e.key <= ub) expect.push_back(e);
    }
    EXPECT_EQ(result, expect);
    auto outcome = ads::VerifyTreeVo(lb, ub, vo, root, ObjectsFor(result));
    EXPECT_TRUE(outcome.ok) << outcome.error << " range [" << lb << "," << ub
                            << "] n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MbTreeSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 17, 64, 100,
                                           257, 1000));

class MbTreeFanouts : public ::testing::TestWithParam<int> {};

TEST_P(MbTreeFanouts, WorksAcrossFanouts) {
  const int fanout = GetParam();
  MbTree tree(fanout);
  for (Key k : ShuffledKeys(300, fanout)) tree.Insert(k, Vh(k));
  tree.CheckInvariants();
  ads::EntryList result;
  ads::TreeVo vo = tree.RangeQuery(10, 200, &result);
  auto outcome =
      ads::VerifyTreeVo(10, 200, vo, tree.root_digest(), ObjectsFor(result));
  EXPECT_TRUE(outcome.ok) << outcome.error;
}

INSTANTIATE_TEST_SUITE_P(Fanouts, MbTreeFanouts,
                         ::testing::Values(3, 4, 5, 8, 16, 32));

TEST(MbTree, BulkInsertMatchesSingleInserts) {
  MbTree singles(4);
  MbTree bulk(4);
  std::vector<Key> keys = ShuffledKeys(500, 99);
  // Preload both with the same prefix.
  for (size_t i = 0; i < 100; ++i) singles.Insert(keys[i], Vh(keys[i]));
  for (size_t i = 0; i < 100; ++i) bulk.Insert(keys[i], Vh(keys[i]));
  // Remaining keys: one at a time vs one sorted batch.
  ads::EntryList run;
  for (size_t i = 100; i < keys.size(); ++i) {
    singles.Insert(keys[i], Vh(keys[i]));
    run.push_back({keys[i], Vh(keys[i])});
  }
  std::sort(run.begin(), run.end(), ads::EntryKeyLess);
  bulk.BulkInsert(run);
  bulk.CheckInvariants();
  EXPECT_EQ(bulk.AllEntries(), singles.AllEntries());
  EXPECT_EQ(bulk.size(), singles.size());
}

TEST(MbTree, BulkInsertRejectsUnsortedRun) {
  MbTree tree(4);
  ads::EntryList run = {{5, Vh(5)}, {3, Vh(3)}};
  EXPECT_THROW(tree.BulkInsert(run), std::invalid_argument);
}

// --- Gas model -------------------------------------------------------------

TEST(MbTreeGas, InsertFollowsPaperFormula) {
  // For an insert at depth d, the paper's model charges
  //   d * (2 sstore + 2 supdate + (2F+1) sload) + 1 sstore   (+ hashes)
  // with extra per-node charges when splits create siblings.
  MbTree tree(4);
  for (Key k : ShuffledKeys(1000, 5)) tree.Insert(k, Vh(k));

  gas::Meter meter(gas::kEthereumSchedule, 1'000'000'000);
  tree.Insert(3'000'000, Vh(1), &meter);
  const auto& ops = meter.op_counts();
  const size_t d = tree.height();
  // At least the path is charged; splits may add a handful of nodes.
  EXPECT_GE(ops.sstore, 2 * d + 1);
  EXPECT_LE(ops.sstore, 2 * (d + 4) + 1);
  EXPECT_GE(ops.supdate, 2 * d);
  EXPECT_GE(ops.sload, (2 * 4 + 1) * d);
  EXPECT_GT(ops.hash_calls, 0u);
}

TEST(MbTreeGas, UpdateCheaperThanInsert) {
  MbTree tree(4);
  for (Key k : ShuffledKeys(2000, 6)) tree.Insert(k, Vh(k));

  gas::Meter insert_meter(gas::kEthereumSchedule, 1'000'000'000);
  tree.Insert(9'000'001, Vh(2), &insert_meter);
  gas::Meter update_meter(gas::kEthereumSchedule, 1'000'000'000);
  ASSERT_TRUE(tree.Update(1, crypto::ValueHash("nv"), &update_meter));

  // Updates rewrite hashes in place: no sstores at all, and much less gas.
  EXPECT_EQ(update_meter.op_counts().sstore, 0u);
  EXPECT_LT(update_meter.used(), insert_meter.used() / 3);
}

TEST(MbTreeGas, BulkInsertSharesAncestorUpdates) {
  // Inserting a contiguous sorted run in bulk must be cheaper than the same
  // inserts one at a time (the paper's Cbshare saving).
  std::vector<Key> base = ShuffledKeys(2000, 8);
  ads::EntryList run;
  for (Key k = 1'000'000; k < 1'000'256; ++k) run.push_back({k, Vh(k)});

  MbTree singles(4);
  for (Key k : base) singles.Insert(k, Vh(k));
  gas::Meter singles_meter(gas::kEthereumSchedule, 100'000'000'000ull);
  for (const ads::Entry& e : run) singles.Insert(e.key, e.value_hash, &singles_meter);

  MbTree bulk(4);
  for (Key k : base) bulk.Insert(k, Vh(k));
  gas::Meter bulk_meter(gas::kEthereumSchedule, 100'000'000'000ull);
  bulk.BulkInsert(run, &bulk_meter);

  EXPECT_LT(bulk_meter.used(), singles_meter.used() / 2);
  EXPECT_EQ(bulk.AllEntries(), singles.AllEntries());
}

TEST(MbTreeGas, InsertGasGrowsLogarithmically) {
  // Gas at N and at N^2 should differ by roughly 2x (depth doubling), far
  // from linear growth.
  auto gas_at = [](size_t n) {
    MbTree tree(4);
    for (Key k : ShuffledKeys(n, n)) tree.Insert(k, Vh(k));
    gas::Meter meter(gas::kEthereumSchedule, 1'000'000'000);
    tree.Insert(-5, Vh(3), &meter);
    return meter.used();
  };
  const uint64_t g_small = gas_at(100);
  const uint64_t g_big = gas_at(10000);
  EXPECT_LT(g_big, 3 * g_small);
}

// --- Adversarial VO checks ---------------------------------------------------

TEST(MbTreeVerify, DetectsTamperedValue) {
  MbTree tree(4);
  for (Key k : ShuffledKeys(100, 11)) tree.Insert(k, Vh(k));
  ads::EntryList result;
  ads::TreeVo vo = tree.RangeQuery(10, 100, &result);
  std::vector<Object> objects = ObjectsFor(result);
  ASSERT_FALSE(objects.empty());
  objects[0].value = "tampered";
  auto outcome = ads::VerifyTreeVo(10, 100, vo, tree.root_digest(), objects);
  EXPECT_FALSE(outcome.ok);
}

TEST(MbTreeVerify, DetectsDroppedResult) {
  MbTree tree(4);
  for (Key k : ShuffledKeys(100, 12)) tree.Insert(k, Vh(k));
  ads::EntryList result;
  ads::TreeVo vo = tree.RangeQuery(10, 100, &result);
  std::vector<Object> objects = ObjectsFor(result);
  ASSERT_GT(objects.size(), 1u);
  objects.pop_back();
  auto outcome = ads::VerifyTreeVo(10, 100, vo, tree.root_digest(), objects);
  EXPECT_FALSE(outcome.ok);
}

TEST(MbTreeVerify, DetectsInjectedResult) {
  MbTree tree(4);
  for (Key k : ShuffledKeys(100, 13)) tree.Insert(k, Vh(k));
  ads::EntryList result;
  ads::TreeVo vo = tree.RangeQuery(10, 100, &result);
  std::vector<Object> objects = ObjectsFor(result);
  objects.push_back({55'555, "injected"});
  auto outcome = ads::VerifyTreeVo(10, 100, vo, tree.root_digest(), objects);
  EXPECT_FALSE(outcome.ok);
}

TEST(MbTreeVerify, DetectsStaleRoot) {
  // After an update, a response built from the *current* tree must not verify
  // against the pre-update digest: freshness comes from the blockchain always
  // serving the latest root.
  MbTree tree(4);
  for (Key k : ShuffledKeys(100, 14)) tree.Insert(k, Vh(k));
  Hash stale_root = tree.root_digest();
  ASSERT_TRUE(tree.Update(1, crypto::ValueHash("nv")));

  ads::EntryList result;
  ads::TreeVo vo = tree.RangeQuery(0, 50, &result);
  std::vector<Object> objects;
  for (const ads::Entry& e : result) {
    objects.push_back({e.key, e.key == 1 ? "nv" : "value-" + std::to_string(e.key)});
  }
  EXPECT_FALSE(ads::VerifyTreeVo(0, 50, vo, stale_root, objects).ok);
  EXPECT_TRUE(ads::VerifyTreeVo(0, 50, vo, tree.root_digest(), objects).ok);
}

}  // namespace
}  // namespace gem2::mbtree
