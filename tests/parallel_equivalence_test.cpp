// Equivalence tests for the perf fast paths: every parallel or incremental
// code path must produce digests and wire bytes BIT-IDENTICAL to the serial
// from-scratch computation it replaces. A speedup that changes a digest is a
// soundness bug, not an optimization — these tests are the contract.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "ads/static_tree.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/authenticated_db.h"
#include "core/query_engine.h"
#include "core/wire.h"
#include "crypto/digest.h"
#include "crypto/keccak.h"
#include "crypto/merkle.h"
#include "crypto/mpt.h"
#include "seed_util.h"
#include "workload/workload.h"

namespace gem2 {
namespace {

ads::EntryList RandomEntries(Rng& rng, size_t n) {
  std::map<Key, Hash> unique;
  while (unique.size() < n) {
    const Key key = static_cast<Key>(rng.Uniform(0, 1'000'000));
    unique[key] = crypto::ValueHash("v" + std::to_string(rng.Uniform(0, 1 << 20)));
  }
  ads::EntryList entries;
  entries.reserve(n);
  for (const auto& [key, hash] : unique) entries.push_back({key, hash});
  return entries;
}

TEST(ParallelEquivalence, StaticTreeParallelBuildMatchesSerial) {
  testutil::SeedReporter seed(1234);
  Rng rng(seed);
  common::ThreadPool pool(3);
  // Sizes straddling the parallel threshold, several fanouts.
  for (size_t n : {1u, 7u, 127u, 128u, 1000u, 5000u}) {
    for (int fanout : {2, 4, 7}) {
      ads::EntryList entries = RandomEntries(rng, n);
      ads::StaticTree serial(entries, fanout, nullptr);
      ads::StaticTree parallel(entries, fanout, &pool);
      ASSERT_EQ(serial.root_digest(), parallel.root_digest())
          << "n=" << n << " fanout=" << fanout;
      // The materialized structure answers queries identically too.
      ads::EntryList r1, r2;
      const Key lb = entries.front().key, ub = entries[n / 2].key;
      ads::TreeVo vo1 = serial.RangeQuery(lb, ub, &r1);
      ads::TreeVo vo2 = parallel.RangeQuery(lb, ub, &r2);
      EXPECT_EQ(r1, r2);
      EXPECT_EQ(ads::SerializeTreeVo(vo1), ads::SerializeTreeVo(vo2));
    }
  }
}

TEST(ParallelEquivalence, StaticTreeIncrementalUpdateMatchesRebuild) {
  testutil::SeedReporter seed(5678);
  Rng rng(seed);
  for (size_t n : {1u, 5u, 64u, 513u}) {
    for (int fanout : {2, 4}) {
      ads::EntryList entries = RandomEntries(rng, n);
      ads::StaticTree tree(entries, fanout);
      for (int round = 0; round < 20; ++round) {
        const size_t i = rng.Uniform(0, entries.size() - 1);
        entries[i].value_hash =
            crypto::ValueHash("u" + std::to_string(rng.Uniform(0, 1 << 20)));
        ASSERT_TRUE(tree.UpdateValueHash(entries[i].key, entries[i].value_hash));
        ads::StaticTree rebuilt(entries, fanout);
        ASSERT_EQ(tree.root_digest(), rebuilt.root_digest())
            << "n=" << n << " fanout=" << fanout << " round=" << round;
      }
      // Absent key: reports false, digest untouched.
      const Hash before = tree.root_digest();
      EXPECT_FALSE(tree.UpdateValueHash(2'000'000, crypto::ValueHash("x")));
      EXPECT_EQ(tree.root_digest(), before);
    }
  }
}

TEST(ParallelEquivalence, BinaryMerkleUpdateLeafMatchesRebuild) {
  testutil::SeedReporter seed(91);
  Rng rng(seed);
  // Odd counts exercise the promoted-node path at every level.
  for (size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 17u}) {
    std::vector<Hash> leaves;
    for (size_t i = 0; i < n; ++i) {
      leaves.push_back(crypto::ValueHash("leaf" + std::to_string(rng.Uniform(0, 99))));
    }
    crypto::BinaryMerkleTree tree(leaves);
    for (int round = 0; round < 10; ++round) {
      const size_t i = rng.Uniform(0, n - 1);
      leaves[i] = crypto::ValueHash("upd" + std::to_string(rng.Uniform(0, 1 << 20)));
      tree.UpdateLeaf(i, leaves[i]);
      ASSERT_EQ(tree.root(), crypto::BinaryMerkleTree(leaves).root())
          << "n=" << n << " round=" << round;
      // Proofs from the updated tree still verify against the new root.
      crypto::MerkleProof proof = tree.Prove(i);
      EXPECT_EQ(crypto::BinaryMerkleTree::RootFromProof(leaves[i], proof),
                tree.root());
    }
  }
  EXPECT_THROW(crypto::BinaryMerkleTree({}).UpdateLeaf(0, Hash{}),
               std::out_of_range);
}

TEST(ParallelEquivalence, MptMemoizedRootMatchesFreshTrie) {
  testutil::SeedReporter seed(77);
  Rng rng(seed);
  crypto::PatriciaTrie incremental;
  std::map<Bytes, Bytes> model;
  for (int i = 0; i < 200; ++i) {
    Bytes key;
    // Short keys collide often, forcing overwrites and deep branch reshaping.
    for (uint64_t b = rng.Uniform(1, 4); b > 0; --b) {
      key.push_back(static_cast<uint8_t>(rng.Uniform(0, 7)));
    }
    Bytes value{static_cast<uint8_t>(rng.Uniform(1, 255)),
                static_cast<uint8_t>(i & 0xff)};
    incremental.Put(key, value);
    model[key] = value;
    // The memoized root (only dirty path rehashed) must equal a from-scratch
    // trie over the same content.
    crypto::PatriciaTrie fresh;
    for (const auto& [k, v] : model) fresh.Put(k, v);
    ASSERT_EQ(incremental.RootHash(), fresh.RootHash()) << "put #" << i;
  }
  // Proofs produced from memoized nodes verify as usual.
  const auto& [k, v] = *model.begin();
  EXPECT_TRUE(crypto::PatriciaTrie::VerifyProof(incremental.RootHash(), k, v,
                                                incremental.Prove(k)));
}

TEST(ParallelEquivalence, ThreadPoolParallelForRunsEveryIndexOnce) {
  common::ThreadPool pool(3);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;

  // Nested ParallelFor from inside a pool task must not deadlock.
  std::atomic<size_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(0, 100, 10,
                       [&](size_t b, size_t e) { total.fetch_add(e - b); });
    }
  });
  EXPECT_EQ(total.load(), 800u);

  // Exceptions thrown by a chunk surface on the caller.
  EXPECT_THROW(pool.ParallelFor(0, 100, 1,
                                [](size_t begin, size_t) {
                                  if (begin == 42) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

std::unique_ptr<core::AuthenticatedDb> MakeDb(core::AdsKind kind,
                                              workload::WorkloadGenerator& gen) {
  core::DbOptions o;
  o.kind = kind;
  o.gem2.m = 4;
  o.gem2.smax = 256;
  o.env.gas_limit = 1'000'000'000'000ull;
  o.env.txs_per_block = 64;
  if (kind == core::AdsKind::kGem2Star) o.split_points = gen.SplitPoints(8);
  return std::make_unique<core::AuthenticatedDb>(o);
}

TEST(ParallelEquivalence, QueryBatchMatchesSerialQueriesBitForBit) {
  testutil::SeedReporter seed(2024);
  for (core::AdsKind kind : {core::AdsKind::kGem2, core::AdsKind::kGem2Star,
                             core::AdsKind::kMbTree}) {
    workload::WorkloadOptions w;
    w.seed = seed;
    w.domain_max = 100'000;
    workload::WorkloadGenerator gen(w);
    auto db = MakeDb(kind, gen);
    for (int i = 0; i < 800; ++i) db->Insert(gen.Next().object);

    common::ThreadPool pool(3);
    core::SpQueryEngine engine(db.get(), &pool);
    std::vector<core::KeyRange> ranges;
    for (int q = 0; q < 32; ++q) {
      workload::RangeQuerySpec spec = gen.NextQuery(0.05);
      ranges.emplace_back(spec.lb, spec.ub);
    }
    const uint64_t epoch = engine.epoch();
    std::vector<core::QueryResponse> batch = engine.QueryBatch(ranges);
    ASSERT_EQ(batch.size(), ranges.size());
    EXPECT_EQ(engine.epoch(), epoch) << "queries must not advance the epoch";
    for (size_t i = 0; i < ranges.size(); ++i) {
      core::QueryResponse serial =
          engine.Query(ranges[i].first, ranges[i].second);
      ASSERT_EQ(core::SerializeResponse(batch[i]),
                core::SerializeResponse(serial))
          << "range #" << i;
      core::VerifiedResult vr =
          engine.VerifyFor(ranges[i].first, ranges[i].second, batch[i]);
      ASSERT_TRUE(vr.ok) << vr.error;
    }
  }
}

TEST(ParallelEquivalence, ConcurrentQueriesDuringWritesConverge) {
  testutil::SeedReporter seed(31337);
  workload::WorkloadOptions w;
  w.seed = seed;
  w.domain_max = 50'000;
  w.update_ratio = 0.3;

  // Reference: the same operation stream applied serially, no engine.
  workload::WorkloadGenerator ref_gen(w);
  auto ref_db = MakeDb(core::AdsKind::kGem2, ref_gen);
  std::vector<workload::Operation> ops;
  for (int i = 0; i < 400; ++i) ops.push_back(ref_gen.Next());
  for (const workload::Operation& op : ops) {
    if (op.type == workload::Operation::Type::kInsert) {
      ref_db->Insert(op.object);
    } else {
      ref_db->Update(op.object);
    }
  }

  // Engine-driven db: readers hammer QueryBatch while the owner writes.
  workload::WorkloadGenerator gen(w);
  auto db = MakeDb(core::AdsKind::kGem2, gen);
  common::ThreadPool pool(2);
  core::SpQueryEngine engine(db.get(), &pool);
  std::atomic<bool> done{false};
  std::atomic<bool> reader_failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(seed + 100 + static_cast<uint64_t>(t));
      while (!done.load(std::memory_order_acquire)) {
        const Key lb = static_cast<Key>(rng.Uniform(0, 40'000));
        std::vector<core::KeyRange> ranges{{lb, lb + 5'000},
                                           {lb / 2, lb / 2 + 100}};
        std::vector<core::QueryResponse> batch = engine.QueryBatch(ranges);
        if (batch.size() != ranges.size()) {
          reader_failed.store(true);
          return;
        }
      }
    });
  }
  for (const workload::Operation& op : ops) {
    if (op.type == workload::Operation::Type::kInsert) {
      engine.Insert(op.object);
    } else {
      engine.Update(op.object);
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(reader_failed.load());
  EXPECT_EQ(engine.epoch(), ops.size());

  // Identical op stream => identical committed contract digests, regardless
  // of the concurrent read traffic and the incremental SP cache maintenance.
  EXPECT_EQ(db->environment().CurrentStateRoot(),
            ref_db->environment().CurrentStateRoot());

  // And the final snapshot answers queries that verify.
  core::QueryResponse response = engine.Query(0, 50'000);
  core::VerifiedResult vr = engine.VerifyFor(0, 50'000, response);
  EXPECT_TRUE(vr.ok) << vr.error;
}

}  // namespace
}  // namespace gem2
