// QuerySpec surface tests: structural validation (Check), canonical codec
// round-trips across spec shapes, and fail-closed parsing — truncations at
// every prefix, trailing bytes, unknown tags, and structurally invalid
// images all come back std::nullopt, never a weaker spec.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/query_spec.h"

namespace gem2::core {
namespace {

QuerySpec TwoPredicateAnd() {
  QuerySpec spec;
  spec.op = BoolOp::kAnd;
  spec.predicates.push_back(Predicate{PredicateKind::kRange, 0, 3, 9});
  spec.predicates.push_back(Predicate{PredicateKind::kRange, 1, -5, 5});
  return spec;
}

// ---------------------------------------------------------------------------
// Construction and Check
// ---------------------------------------------------------------------------

TEST(QuerySpecCheck, RangeFactoryIsOneAndPredicate) {
  const QuerySpec spec = QuerySpec::Range(-7, 42);
  EXPECT_EQ(spec.op, BoolOp::kAnd);
  EXPECT_EQ(spec.aggregate, AggregateKind::kNone);
  ASSERT_EQ(spec.predicates.size(), 1u);
  EXPECT_EQ(spec.predicates[0].kind, PredicateKind::kRange);
  EXPECT_EQ(spec.predicates[0].attr, 0u);
  EXPECT_EQ(spec.predicates[0].lb, -7);
  EXPECT_EQ(spec.predicates[0].ub, 42);
  EXPECT_TRUE(spec.Check().empty());

  EXPECT_EQ(QuerySpec::Range(0, 0, 3).predicates[0].attr, 3u);
}

TEST(QuerySpecCheck, RejectsStructuralViolations) {
  QuerySpec empty;
  EXPECT_FALSE(empty.Check().empty());

  QuerySpec too_many;
  for (size_t i = 0; i <= kMaxSpecPredicates; ++i) {
    too_many.predicates.push_back(Predicate{PredicateKind::kRange, 0, 0, 1});
  }
  EXPECT_FALSE(too_many.Check().empty());

  QuerySpec inverted = QuerySpec::Range(10, 9);
  EXPECT_EQ(inverted.Check(), "predicate bounds out of order");

  QuerySpec multi_agg = TwoPredicateAnd();
  multi_agg.aggregate = AggregateKind::kCount;
  EXPECT_EQ(multi_agg.Check(), "aggregate specs take exactly one predicate");

  QuerySpec single_agg = QuerySpec::Range(0, 100);
  single_agg.aggregate = AggregateKind::kSum;
  EXPECT_TRUE(single_agg.Check().empty());
}

TEST(QuerySpecCheck, AcceptsFullKeyDomainBounds) {
  QuerySpec spec = QuerySpec::Range(kKeyMin, kKeyMax);
  EXPECT_TRUE(spec.Check().empty());
  QuerySpec point = QuerySpec::Range(kKeyMax, kKeyMax);
  EXPECT_TRUE(point.Check().empty());
}

TEST(QuerySpecToString, RendersCompositionAndAggregates) {
  EXPECT_EQ(ToString(TwoPredicateAnd()), "AND(a0:[3,9], a1:[-5,5])");

  QuerySpec disj = TwoPredicateAnd();
  disj.op = BoolOp::kOr;
  EXPECT_EQ(ToString(disj), "OR(a0:[3,9], a1:[-5,5])");

  QuerySpec agg = QuerySpec::Range(0, 100);
  agg.aggregate = AggregateKind::kCount;
  EXPECT_EQ(ToString(agg), "COUNT(a0:[0,100])");
}

// ---------------------------------------------------------------------------
// Canonical codec
// ---------------------------------------------------------------------------

TEST(QuerySpecCodec, RoundTripsAcrossShapes) {
  std::vector<QuerySpec> shapes;
  shapes.push_back(QuerySpec::Range(0, 0));
  shapes.push_back(QuerySpec::Range(kKeyMin, kKeyMax));
  shapes.push_back(TwoPredicateAnd());
  {
    QuerySpec disj = TwoPredicateAnd();
    disj.op = BoolOp::kOr;
    shapes.push_back(disj);
  }
  for (AggregateKind agg : {AggregateKind::kCount, AggregateKind::kSum,
                            AggregateKind::kMin, AggregateKind::kMax}) {
    QuerySpec spec = QuerySpec::Range(-1000, 1000, 2);
    spec.aggregate = agg;
    shapes.push_back(spec);
  }
  {
    QuerySpec wide;
    wide.op = BoolOp::kOr;
    for (size_t i = 0; i < kMaxSpecPredicates; ++i) {
      wide.predicates.push_back(Predicate{
          PredicateKind::kRange, static_cast<uint32_t>(i),
          static_cast<Key>(-10 * static_cast<Key>(i)),
          static_cast<Key>(10 * static_cast<Key>(i))});
    }
    shapes.push_back(wide);
  }

  for (const QuerySpec& spec : shapes) {
    ASSERT_TRUE(spec.Check().empty()) << ToString(spec);
    const Bytes image = SerializeQuerySpec(spec);
    auto parsed = ParseQuerySpec(image);
    ASSERT_TRUE(parsed.has_value()) << ToString(spec);
    EXPECT_EQ(*parsed, spec);
    // Canonical: exactly one image per spec.
    EXPECT_EQ(SerializeQuerySpec(*parsed), image);
  }
}

TEST(QuerySpecCodec, ImageLayoutIsFixedWidth) {
  // [op u8][agg u8][npred u64] + npred * ([kind u8][attr u64][lb][ub]).
  EXPECT_EQ(SerializeQuerySpec(QuerySpec::Range(1, 2)).size(), 10u + 25u);
  EXPECT_EQ(SerializeQuerySpec(TwoPredicateAnd()).size(), 10u + 2u * 25u);
}

// ---------------------------------------------------------------------------
// Fail-closed parsing
// ---------------------------------------------------------------------------

TEST(QuerySpecCodec, RejectsEveryTruncation) {
  const Bytes image = SerializeQuerySpec(TwoPredicateAnd());
  for (size_t len = 0; len < image.size(); ++len) {
    Bytes prefix(image.begin(), image.begin() + static_cast<long>(len));
    EXPECT_FALSE(ParseQuerySpec(prefix).has_value()) << "prefix length " << len;
  }
}

TEST(QuerySpecCodec, RejectsTrailingBytes) {
  Bytes image = SerializeQuerySpec(TwoPredicateAnd());
  image.push_back(0);
  EXPECT_FALSE(ParseQuerySpec(image).has_value());
}

TEST(QuerySpecCodec, RejectsUnknownTagsFailClosed) {
  const Bytes image = SerializeQuerySpec(TwoPredicateAnd());

  Bytes bad_op = image;
  bad_op[0] = 7;  // unknown BoolOp
  EXPECT_FALSE(ParseQuerySpec(bad_op).has_value());

  Bytes bad_agg = image;
  bad_agg[1] = 9;  // unknown AggregateKind
  EXPECT_FALSE(ParseQuerySpec(bad_agg).has_value());

  Bytes bad_kind = image;
  bad_kind[10] = 0;  // unknown PredicateKind: refuse the whole spec
  EXPECT_FALSE(ParseQuerySpec(bad_kind).has_value());
}

TEST(QuerySpecCodec, RejectsStructurallyInvalidImages) {
  // Zero predicates.
  Bytes zero = SerializeQuerySpec(QuerySpec::Range(0, 1));
  zero.resize(10);           // keep [op][agg][npred] only
  zero[9] = 0;               // npred = 0
  EXPECT_FALSE(ParseQuerySpec(zero).has_value());

  // A count that overflows the predicate limit (hostile allocation).
  Bytes huge = zero;
  for (size_t i = 2; i < 10; ++i) huge[i] = 0xff;
  EXPECT_FALSE(ParseQuerySpec(huge).has_value());

  // An image whose bounds are out of order: parses structurally but fails
  // Check, so the parser must refuse it.
  QuerySpec inverted = QuerySpec::Range(5, 6);
  Bytes image = SerializeQuerySpec(inverted);
  // lb is at offset 10 + 1 + 8; ub 8 bytes later. Swap them.
  for (size_t i = 0; i < 8; ++i) std::swap(image[19 + i], image[27 + i]);
  EXPECT_FALSE(ParseQuerySpec(image).has_value());

  // An aggregate over two predicates.
  Bytes multi_agg = SerializeQuerySpec(TwoPredicateAnd());
  multi_agg[1] = static_cast<uint8_t>(AggregateKind::kCount);
  EXPECT_FALSE(ParseQuerySpec(multi_agg).has_value());

  EXPECT_FALSE(ParseQuerySpec(Bytes{}).has_value());
}

}  // namespace
}  // namespace gem2::core
