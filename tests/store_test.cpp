// Durable SP store tests: segment format and recovery scan (including the
// exhaustive truncation and bit-flip sweeps of the recover-or-fail-closed
// contract), fsync policies against simulated power cuts, checkpoint
// encode/decode and damage fallback, the end-to-end checkpoint + journal-tail
// engine, and the real-filesystem Vfs path.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "fault/failpoint_sweep.h"
#include "seed_util.h"
#include "store/checkpoint.h"
#include "store/durable_journal.h"
#include "store/durable_store.h"
#include "store/segment.h"
#include "store/sp_object_store.h"
#include "store/vfs.h"

namespace gem2::store {
namespace {

using core::JournalEntry;
using testutil::SeedReporter;

std::vector<JournalEntry> SampleEntries(size_t n) {
  std::vector<JournalEntry> entries;
  for (size_t i = 0; i < n; ++i) {
    JournalEntry e;
    e.op = i % 5 == 4 ? JournalEntry::Op::kDelete
           : i % 3 == 2 ? JournalEntry::Op::kUpdate
                        : JournalEntry::Op::kInsert;
    e.object.key = static_cast<Key>(100 + i);
    e.object.value =
        e.op == JournalEntry::Op::kDelete
            ? ""
            : "value-" + std::to_string(i) + std::string(i % 7, 'p');
    entries.push_back(std::move(e));
  }
  return entries;
}

Bytes BuildSegment(uint64_t base, const std::vector<JournalEntry>& entries) {
  Bytes image = SegmentHeader(base);
  for (const JournalEntry& e : entries) {
    Bytes body;
    core::AppendJournalEntryBody(&body, e);
    AppendRecordFrame(&image, body);
  }
  return image;
}

TEST(Crc32c, KnownAnswer) {
  // The CRC32C check value from RFC 3720: crc("123456789") = 0xE3069283.
  const char* s = "123456789";
  EXPECT_EQ(common::Crc32c(reinterpret_cast<const uint8_t*>(s), 9),
            0xE3069283u);
  EXPECT_EQ(common::Crc32c(nullptr, 0), 0u);
}

TEST(Segment, CleanScanRoundTrips) {
  const auto entries = SampleEntries(9);
  const Bytes image = BuildSegment(42, entries);
  const SegmentScan scan = ScanSegment(image);
  EXPECT_EQ(scan.outcome, SegmentScan::Outcome::kClean);
  EXPECT_EQ(scan.base_seqno, 42u);
  EXPECT_EQ(scan.entries, entries);
  EXPECT_EQ(scan.valid_bytes, image.size());
  EXPECT_EQ(scan.truncated_bytes, 0u);
}

TEST(Segment, FileNameRoundTrips) {
  uint64_t base = 0;
  EXPECT_TRUE(ParseSegmentFileName(SegmentFileName(7), &base));
  EXPECT_EQ(base, 7u);
  EXPECT_FALSE(ParseSegmentFileName("seg-123.log", &base));
  EXPECT_FALSE(ParseSegmentFileName("ckpt-00000000000000000007", &base));
}

// The durability headline, part 1: EVERY byte-length truncation of a segment
// recovers a valid prefix of the original records (or reports an unusable
// header) — never a crash, never different records.
TEST(Segment, ExhaustiveTruncationRecoversAPrefixOrFailsClosed) {
  const auto entries = SampleEntries(12);
  const Bytes image = BuildSegment(0, entries);
  for (size_t len = 0; len < image.size(); ++len) {
    const Bytes cut(image.begin(), image.begin() + static_cast<long>(len));
    const SegmentScan scan = ScanSegment(cut);
    if (len < kSegmentHeaderBytes) {
      EXPECT_EQ(scan.outcome, SegmentScan::Outcome::kBadHeader) << len;
      continue;
    }
    // A truncation is a lost tail, never mid-stream damage.
    EXPECT_NE(scan.outcome, SegmentScan::Outcome::kCorrupt) << len;
    ASSERT_LE(scan.entries.size(), entries.size()) << len;
    for (size_t i = 0; i < scan.entries.size(); ++i) {
      ASSERT_EQ(scan.entries[i], entries[i]) << "prefix diverged at " << len;
    }
    EXPECT_EQ(scan.valid_bytes + scan.truncated_bytes, len) << len;
  }
}

// Part 2: EVERY single-byte flip yields a valid prefix of the original
// records or a fail-closed refusal — never a crash, never a silently wrong
// stream. (Bytes 20..23 are unchecksummed header padding: a flip there is
// semantically invisible and legitimately scans clean.)
TEST(Segment, ExhaustiveByteFlipNeverYieldsWrongRecords) {
  const auto entries = SampleEntries(10);
  const Bytes image = BuildSegment(3, entries);
  for (size_t off = 0; off < image.size(); ++off) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
      Bytes flipped = image;
      flipped[off] ^= mask;
      const SegmentScan scan = ScanSegment(flipped);
      ASSERT_LE(scan.entries.size(), entries.size()) << off;
      for (size_t i = 0; i < scan.entries.size(); ++i) {
        ASSERT_EQ(scan.entries[i], entries[i])
            << "byte " << off << " mask " << int(mask)
            << " produced records that are not a prefix";
      }
      if (scan.outcome == SegmentScan::Outcome::kClean) {
        // Only the unchecksummed header padding may scan clean after a flip.
        ASSERT_GE(off, 20u) << "flip at " << off << " went undetected";
        ASSERT_LT(off, kSegmentHeaderBytes);
        EXPECT_EQ(scan.entries, entries);
      }
    }
  }
}

TEST(Segment, MidStreamCorruptionFailsClosed) {
  const auto entries = SampleEntries(8);
  const Bytes image = BuildSegment(0, entries);
  // Flip a payload byte of the FIRST record: valid records follow, so the
  // scan must refuse the segment rather than resync past the hole.
  Bytes corrupt = image;
  corrupt[kSegmentHeaderBytes + 8 + 2] ^= 0x10;
  const SegmentScan scan = ScanSegment(corrupt);
  EXPECT_EQ(scan.outcome, SegmentScan::Outcome::kCorrupt);
  EXPECT_TRUE(scan.failed_closed());
  EXPECT_EQ(scan.corrupt_records, 1u);
  EXPECT_TRUE(scan.entries.empty());
}

TEST(Segment, CorruptFinalRecordTruncates) {
  const auto entries = SampleEntries(6);
  const Bytes image = BuildSegment(0, entries);
  Bytes corrupt = image;
  corrupt.back() ^= 0x01;  // last byte of the last record's payload
  const SegmentScan scan = ScanSegment(corrupt);
  EXPECT_EQ(scan.outcome, SegmentScan::Outcome::kCorruptTail);
  EXPECT_EQ(scan.entries.size(), entries.size() - 1);
  EXPECT_EQ(scan.corrupt_records, 1u);
}

TEST(MemVfsModel, PowerCutKeepsDurableAndTearsVolatile) {
  MemVfs vfs;
  ASSERT_TRUE(vfs.CreateDir("/d").ok);
  IoStatus status = IoStatus::Ok();
  auto f = vfs.OpenAppend("/d/f", &status);
  ASSERT_NE(f, nullptr);
  const Bytes synced = {1, 2, 3, 4};
  const Bytes unsynced = {5, 6, 7, 8, 9};
  ASSERT_TRUE(f->Append(synced.data(), synced.size()).ok);
  ASSERT_TRUE(f->Sync().ok);
  ASSERT_TRUE(f->Append(unsynced.data(), unsynced.size()).ok);

  vfs.CutPower([](size_t volatile_bytes) { return volatile_bytes / 2; });
  EXPECT_TRUE(vfs.powered_off());
  EXPECT_FALSE(vfs.ReadFile("/d/f", nullptr).ok);

  vfs.Restart();
  Bytes after;
  ASSERT_TRUE(vfs.ReadFile("/d/f", &after).ok);
  EXPECT_EQ(after, (Bytes{1, 2, 3, 4, 5, 6}));  // synced + torn prefix
}

TEST(DurableJournal, RotatesSegmentsAndRecoversAcrossThem) {
  MemVfs vfs;
  JournalOptions options;
  options.segment_bytes = 128;  // force frequent rotation
  std::string error;
  auto journal = DurableJournal::Open(&vfs, "/j", 0, options, &error);
  ASSERT_NE(journal, nullptr) << error;

  const auto entries = SampleEntries(40);
  for (const JournalEntry& e : entries) ASSERT_TRUE(journal->Append(e));
  EXPECT_EQ(journal->next_seqno(), entries.size());
  auto names = vfs.ListDir("/j");
  ASSERT_TRUE(names.has_value());
  EXPECT_GT(names->size(), 3u) << "rotation never triggered";

  const JournalRecovery recovery = RecoverJournal(&vfs, "/j");
  ASSERT_TRUE(recovery.ok) << recovery.error;
  EXPECT_EQ(recovery.entries, entries);
  EXPECT_EQ(recovery.first_seqno, 0u);
  EXPECT_EQ(recovery.next_seqno, entries.size());
  EXPECT_FALSE(recovery.tail_lost);
}

TEST(DurableJournal, FsyncPolicyDecidesWhatAPowerCutCosts) {
  const auto entries = SampleEntries(20);
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNever, FsyncPolicy::kBatch, FsyncPolicy::kEveryRecord}) {
    MemVfs vfs;
    JournalOptions options;
    options.fsync_policy = policy;
    options.batch_records = 4;
    std::string error;
    auto journal = DurableJournal::Open(&vfs, "/j", 0, options, &error);
    ASSERT_NE(journal, nullptr) << error;
    for (const JournalEntry& e : entries) ASSERT_TRUE(journal->Append(e));

    // Worst-case power cut: every unsynced byte is gone.
    vfs.CutPower([](size_t) { return 0; });
    vfs.Restart();
    const JournalRecovery recovery = RecoverJournal(&vfs, "/j");
    ASSERT_TRUE(recovery.ok) << recovery.error;
    switch (policy) {
      case FsyncPolicy::kEveryRecord:
        EXPECT_EQ(recovery.entries.size(), entries.size());
        break;
      case FsyncPolicy::kBatch:
        EXPECT_GE(recovery.entries.size(),
                  entries.size() - options.batch_records);
        break;
      case FsyncPolicy::kNever:
        EXPECT_LE(recovery.entries.size(), entries.size());
        break;
    }
    for (size_t i = 0; i < recovery.entries.size(); ++i) {
      ASSERT_EQ(recovery.entries[i], entries[i]);
    }
  }
}

TEST(DurableJournal, DamageInNonFinalSegmentFailsClosed) {
  MemVfs vfs;
  JournalOptions options;
  options.segment_bytes = 128;
  std::string error;
  auto journal = DurableJournal::Open(&vfs, "/j", 0, options, &error);
  ASSERT_NE(journal, nullptr) << error;
  for (const JournalEntry& e : SampleEntries(40)) {
    ASSERT_TRUE(journal->Append(e));
  }
  auto names = vfs.ListDir("/j");
  ASSERT_TRUE(names.has_value() && names->size() >= 3);

  // Rot a record byte in the FIRST segment: later segments depend on it.
  ASSERT_TRUE(vfs.CorruptByte("/j/" + names->front(),
                              kSegmentHeaderBytes + 10, 0x04));
  const JournalRecovery recovery = RecoverJournal(&vfs, "/j");
  EXPECT_FALSE(recovery.ok);
  EXPECT_TRUE(recovery.entries.empty());
  EXPECT_FALSE(recovery.error.empty());
}

TEST(DurableJournal, SequenceGapBetweenSegmentsFailsClosed) {
  MemVfs vfs;
  JournalOptions options;
  options.segment_bytes = 128;
  std::string error;
  auto journal = DurableJournal::Open(&vfs, "/j", 0, options, &error);
  ASSERT_NE(journal, nullptr) << error;
  for (const JournalEntry& e : SampleEntries(40)) {
    ASSERT_TRUE(journal->Append(e));
  }
  auto names = vfs.ListDir("/j");
  ASSERT_TRUE(names.has_value() && names->size() >= 3);
  ASSERT_TRUE(vfs.RemoveFile("/j/" + (*names)[1]).ok);  // middle segment gone

  const JournalRecovery recovery = RecoverJournal(&vfs, "/j");
  EXPECT_FALSE(recovery.ok);
  EXPECT_NE(recovery.error.find("gap"), std::string::npos) << recovery.error;
}

TEST(Checkpoint, EncodeDecodeRoundTripsIncludingEmptyAndMultiPage) {
  for (const size_t size : {size_t{0}, size_t{100}, size_t{64u << 10},
                            size_t{(64u << 10) + 1}, size_t{200'000}}) {
    Bytes state(size);
    for (size_t i = 0; i < size; ++i) state[i] = static_cast<uint8_t>(i * 31);
    const Bytes image = EncodeCheckpoint(77, state);
    uint64_t seqno = 0;
    Bytes decoded;
    std::string error;
    ASSERT_TRUE(DecodeCheckpoint(image, &seqno, &decoded, &error))
        << size << ": " << error;
    EXPECT_EQ(seqno, 77u);
    EXPECT_EQ(decoded, state);
  }
}

TEST(Checkpoint, EverySingleByteFlipIsDetected) {
  Bytes state(3000);
  for (size_t i = 0; i < state.size(); ++i) {
    state[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  const Bytes image = EncodeCheckpoint(5, state);
  for (size_t off = 0; off < image.size(); ++off) {
    Bytes flipped = image;
    flipped[off] ^= 0x01;
    uint64_t seqno = 0;
    Bytes decoded;
    std::string error;
    EXPECT_FALSE(DecodeCheckpoint(flipped, &seqno, &decoded, &error))
        << "flip at " << off << " went undetected";
  }
}

TEST(Checkpoint, LoadFallsBackPastADamagedNewerCheckpoint) {
  MemVfs vfs;
  SpObjectStore store;
  store.Apply({JournalEntry::Op::kInsert, {1, "one"}});
  ASSERT_TRUE(WriteCheckpoint(&vfs, "/c", 10, store.SnapshotState()).ok);
  store.Apply({JournalEntry::Op::kInsert, {2, "two"}});
  ASSERT_TRUE(WriteCheckpoint(&vfs, "/c", 20, store.SnapshotState()).ok);

  // Rot the newer checkpoint; loading must fall back to seqno 10.
  ASSERT_TRUE(vfs.CorruptByte("/c/" + CheckpointFileName(20), 40, 0x01));
  const CheckpointLoad load = LoadLatestCheckpoint(&vfs, "/c");
  ASSERT_TRUE(load.found);
  EXPECT_EQ(load.seqno, 10u);
  EXPECT_EQ(load.discarded, 1u);

  SpObjectStore restored;
  ASSERT_TRUE(restored.RestoreState(load.state));
  EXPECT_EQ(restored.objects().size(), 1u);
  EXPECT_EQ(restored.objects().at(1), "one");
}

TEST(SpObjectStore, SnapshotRestoreRoundTripsAndRejectsMalformedImages) {
  SpObjectStore store;
  for (const JournalEntry& e : fault::OwnerStream(99, 60)) store.Apply(e);
  const Bytes image = store.SnapshotState();

  SpObjectStore other;
  ASSERT_TRUE(other.RestoreState(image));
  EXPECT_EQ(other.objects(), store.objects());
  EXPECT_EQ(other.StateDigest(), store.StateDigest());

  SpObjectStore reject;
  EXPECT_FALSE(reject.RestoreState({}));
  Bytes truncated(image.begin(), image.end() - 1);
  EXPECT_FALSE(reject.RestoreState(truncated));
  Bytes padded = image;
  padded.push_back(0);
  EXPECT_FALSE(reject.RestoreState(padded));
}

TEST(DurableSpStore, CheckpointPlusTailReplayEqualsFullHistory) {
  SeedReporter seed(7130);
  const auto stream = fault::OwnerStream(seed, 120);

  MemVfs vfs;
  SpObjectStore live;
  StoreOptions options;
  options.journal.segment_bytes = 512;
  RecoveryReport report;
  {
    auto store = DurableSpStore::Open(&vfs, "/sp", &live, options, &report);
    ASSERT_NE(store, nullptr) << report.error;
    for (size_t i = 0; i < stream.size(); ++i) {
      ASSERT_TRUE(store->Apply(stream[i]));
      if (i == 69) {
        std::string error;
        ASSERT_TRUE(store->Checkpoint(&error)) << error;
      }
    }
    // Process crash: the store object dies; only the Vfs bytes survive.
  }

  SpObjectStore shadow;
  for (const JournalEntry& e : stream) shadow.Apply(e);

  SpObjectStore recovered;
  RecoveryReport recovery;
  auto reopened =
      DurableSpStore::Open(&vfs, "/sp", &recovered, options, &recovery);
  ASSERT_NE(reopened, nullptr) << recovery.error;
  EXPECT_TRUE(recovery.used_checkpoint);
  EXPECT_EQ(recovery.checkpoint_seqno, 70u);
  EXPECT_EQ(recovery.replayed_ops, stream.size() - 70);
  EXPECT_EQ(recovery.next_seqno, stream.size());
  EXPECT_EQ(recovered.StateDigest(), shadow.StateDigest());
  EXPECT_EQ(recovered.objects(), shadow.objects());

  // The reopened store accepts new ops and stays recoverable.
  JournalEntry extra;
  extra.op = JournalEntry::Op::kInsert;
  extra.object = {int64_t{5'000'000}, "after-recovery"};
  ASSERT_TRUE(reopened->Apply(extra));
  EXPECT_EQ(reopened->next_seqno(), stream.size() + 1);
}

TEST(DurableSpStore, CheckpointPrunesCoveredSegments) {
  MemVfs vfs;
  SpObjectStore live;
  StoreOptions options;
  options.journal.segment_bytes = 128;
  RecoveryReport report;
  auto store = DurableSpStore::Open(&vfs, "/sp", &live, options, &report);
  ASSERT_NE(store, nullptr) << report.error;
  const auto stream = fault::OwnerStream(11, 80);
  for (const JournalEntry& e : stream) ASSERT_TRUE(store->Apply(e));

  const size_t files_before = vfs.AllFiles().size();
  std::string error;
  ASSERT_TRUE(store->Checkpoint(&error)) << error;
  // More ops land in the still-open segment after the prune.
  JournalEntry extra;
  extra.op = JournalEntry::Op::kInsert;
  extra.object = {int64_t{6'000'000}, "post-prune"};
  ASSERT_TRUE(store->Apply(extra));
  EXPECT_LT(vfs.AllFiles().size(), files_before + 1);  // segments deleted

  SpObjectStore shadow;
  for (const JournalEntry& e : stream) shadow.Apply(e);
  shadow.Apply(extra);

  SpObjectStore recovered;
  RecoveryReport recovery;
  auto reopened = DurableSpStore::Open(&vfs, "/sp", &recovered,
                                       StoreOptions{}, &recovery);
  ASSERT_NE(reopened, nullptr) << recovery.error;
  EXPECT_EQ(recovered.StateDigest(), shadow.StateDigest());
}

// Regression: a recovery that truncated a torn tail must leave the directory
// in a state the NEXT recovery accepts (repair-on-open) — otherwise the torn
// bytes sit behind the new segment and read as mid-stream corruption.
TEST(DurableSpStore, RecoveryAfterRecoveryAfterTornTail) {
  MemVfs vfs;
  StoreOptions options;
  options.journal.fsync_policy = FsyncPolicy::kNever;
  const auto stream = fault::OwnerStream(23, 60);
  {
    SpObjectStore live;
    RecoveryReport report;
    auto store = DurableSpStore::Open(&vfs, "/sp", &live, options, &report);
    ASSERT_NE(store, nullptr) << report.error;
    for (const JournalEntry& e : stream) ASSERT_TRUE(store->Apply(e));
  }
  // Power cut mid-write: keep an odd prefix of the unsynced tail.
  vfs.CutPower([](size_t volatile_bytes) {
    return volatile_bytes > 3 ? volatile_bytes - 3 : 0;
  });
  vfs.Restart();

  SpObjectStore first;
  RecoveryReport first_report;
  uint64_t recovered_ops = 0;
  {
    auto store =
        DurableSpStore::Open(&vfs, "/sp", &first, options, &first_report);
    ASSERT_NE(store, nullptr) << first_report.error;
    recovered_ops = first_report.next_seqno;
    // Write through the reopened store so the second recovery has a suffix.
    JournalEntry extra;
    extra.op = JournalEntry::Op::kInsert;
    extra.object = {int64_t{7'000'000}, "second-life"};
    ASSERT_TRUE(store->Apply(extra));
    ASSERT_TRUE(store->Sync());
  }

  SpObjectStore second;
  RecoveryReport second_report;
  auto reopened =
      DurableSpStore::Open(&vfs, "/sp", &second, options, &second_report);
  ASSERT_NE(reopened, nullptr)
      << "second recovery failed closed: " << second_report.error;
  EXPECT_EQ(second_report.next_seqno, recovered_ops + 1);

  SpObjectStore shadow;
  for (uint64_t i = 0; i < recovered_ops; ++i) shadow.Apply(stream[i]);
  JournalEntry extra;
  extra.op = JournalEntry::Op::kInsert;
  extra.object = {int64_t{7'000'000}, "second-life"};
  shadow.Apply(extra);
  EXPECT_EQ(second.StateDigest(), shadow.StateDigest());
}

TEST(PosixVfsStore, EngineWorksOnTheRealFilesystem) {
  char tmpl[] = "/tmp/gem2_store_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string root = std::string(dir) + "/sp";

  PosixVfs vfs;
  const auto stream = fault::OwnerStream(51, 50);
  {
    SpObjectStore live;
    StoreOptions options;
    options.journal.segment_bytes = 512;
    RecoveryReport report;
    auto store = DurableSpStore::Open(&vfs, root, &live, options, &report);
    ASSERT_NE(store, nullptr) << report.error;
    for (size_t i = 0; i < stream.size(); ++i) {
      ASSERT_TRUE(store->Apply(stream[i]));
      if (i == 24) {
        std::string error;
        ASSERT_TRUE(store->Checkpoint(&error)) << error;
      }
    }
  }
  SpObjectStore shadow;
  for (const JournalEntry& e : stream) shadow.Apply(e);

  SpObjectStore recovered;
  RecoveryReport recovery;
  auto reopened = DurableSpStore::Open(&vfs, root, &recovered, StoreOptions{},
                                       &recovery);
  ASSERT_NE(reopened, nullptr) << recovery.error;
  EXPECT_TRUE(recovery.used_checkpoint);
  EXPECT_EQ(recovered.StateDigest(), shadow.StateDigest());

  // Tidy up the temp tree (best effort).
  if (auto names = vfs.ListDir(root); names.has_value()) {
    for (const std::string& name : *names) vfs.RemoveFile(root + "/" + name);
  }
  rmdir(root.c_str());
  rmdir(dir);
}

}  // namespace
}  // namespace gem2::store
