/// \file seed_util.h
/// Seed plumbing for randomized tests: every such test resolves its seed
/// through here (so GEM2_TEST_SEED overrides the compiled-in default) and
/// prints a one-line reproduction recipe when the test fails.
#ifndef GEM2_TESTS_SEED_UTIL_H_
#define GEM2_TESTS_SEED_UTIL_H_

#include <gtest/gtest.h>

#include <cstdio>

#include "fault/fault.h"

namespace gem2::testutil {

/// Declare at the top of a randomized test body:
///
///   SeedReporter seed(1234);            // 1234 is the checked-in default
///   Rng rng(seed);                      // or seed.seed()
///
/// If the test later fails for any reason, the destructor prints
/// "reproduce with GEM2_TEST_SEED=<seed>" next to the gtest failure output.
class SeedReporter {
 public:
  explicit SeedReporter(uint64_t fallback)
      : seed_(fault::ResolveSeed(fallback)) {}

  ~SeedReporter() {
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "[   SEED   ] reproduce with GEM2_TEST_SEED=%llu\n",
                   static_cast<unsigned long long>(seed_));
    }
  }

  SeedReporter(const SeedReporter&) = delete;
  SeedReporter& operator=(const SeedReporter&) = delete;

  uint64_t seed() const { return seed_; }
  operator uint64_t() const { return seed_; }

 private:
  uint64_t seed_;
};

}  // namespace gem2::testutil

#endif  // GEM2_TESTS_SEED_UTIL_H_
