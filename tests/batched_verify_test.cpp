// Serial vs batched client verification: the batched hash engine and the
// composite slice pool must agree with the serial verifier bit-for-bit —
// same accept/reject decision, same error string, same objects — on honest
// responses and on every seeded forgery, in both wire formats.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/authenticated_db.h"
#include "core/wire.h"
#include "fault/fault.h"
#include "fault/mutator.h"
#include "shard/sharded_db.h"

namespace gem2::core {
namespace {

std::unique_ptr<AuthenticatedDb> MakeDb(AdsKind kind) {
  DbOptions options;
  options.kind = kind;
  options.gem2.m = 2;
  options.gem2.smax = 16;
  if (kind == AdsKind::kGem2Star) options.split_points = {100, 200};
  auto db = std::make_unique<AuthenticatedDb>(options);
  // Three-string value alphabet: repeated value hashes give v3 images a
  // non-empty subtree table, so the forgery loop exercises table decoding.
  for (Key k = 1; k <= 60; ++k) {
    db->Insert({k * 5, "value-" + std::to_string(k % 3)});
  }
  return db;
}

void ExpectBitIdentical(const VerifiedResult& serial,
                        const VerifiedResult& batched, const char* what) {
  EXPECT_EQ(serial.ok, batched.ok) << what;
  EXPECT_EQ(serial.error, batched.error) << what;
  EXPECT_EQ(serial.objects, batched.objects) << what;
}

class BatchedVerify : public ::testing::TestWithParam<AdsKind> {};

INSTANTIATE_TEST_SUITE_P(AllKinds, BatchedVerify,
                         ::testing::Values(AdsKind::kMbTree, AdsKind::kSmbTree,
                                           AdsKind::kLsm, AdsKind::kGem2,
                                           AdsKind::kGem2Star),
                         [](const auto& info) {
                           switch (info.param) {
                             case AdsKind::kMbTree:
                               return "MbTree";
                             case AdsKind::kSmbTree:
                               return "SmbTree";
                             case AdsKind::kLsm:
                               return "Lsm";
                             case AdsKind::kGem2:
                               return "Gem2";
                             case AdsKind::kGem2Star:
                               return "Gem2Star";
                           }
                           return "Unknown";
                         });

TEST_P(BatchedVerify, MatchesSerialOnHonestResponses) {
  auto db = MakeDb(GetParam());
  auto states = db->ReadChainState();
  ASSERT_EQ(states.size(), 1u);
  for (auto [lb, ub] : std::vector<std::pair<Key, Key>>{
           {40, 220}, {0, 300}, {150, 150}, {600, 900}, {kKeyMin, kKeyMax}}) {
    QueryResponse response = db->Query(lb, ub);
    VerifiedResult serial = VerifyResponse(states[0], true, GetParam(),
                                           response, ads::HashStrategy::kSerial);
    VerifiedResult batched = VerifyResponse(
        states[0], true, GetParam(), response, ads::HashStrategy::kBatched);
    ExpectBitIdentical(serial, batched, "honest response");
    EXPECT_TRUE(serial.ok) << serial.error;
  }
}

TEST_P(BatchedVerify, MatchesSerialOnEverySeededForgery) {
  auto db = MakeDb(GetParam());
  auto states = db->ReadChainState();
  ASSERT_EQ(states.size(), 1u);

  for (WireVersion wire : {WireVersion::kV2, WireVersion::kV3}) {
    fault::ResponseMutator mutator(
        fault::DeriveSeed(8181, wire == WireVersion::kV2 ? 0 : 1), wire);
    Rng query_rng(fault::DeriveSeed(8181, 2));
    int parsed_count = 0;
    for (int round = 0; round < 120; ++round) {
      const Key lb = static_cast<Key>(query_rng.Uniform(0, 320));
      const Key ub =
          lb + static_cast<Key>(query_rng.Uniform(0, 320 - static_cast<uint64_t>(lb)));
      QueryResponse response = db->Query(lb, ub);
      fault::Mutation mutation = mutator.Mutate(response);
      auto parsed = ParseResponse(mutation.wire);
      if (!parsed.has_value()) continue;  // rejected at the codec: no verdict
      ++parsed_count;
      VerifiedResult serial = VerifyResponse(states[0], true, GetParam(),
                                             *parsed, ads::HashStrategy::kSerial);
      VerifiedResult batched = VerifyResponse(
          states[0], true, GetParam(), *parsed, ads::HashStrategy::kBatched);
      ExpectBitIdentical(serial, batched,
                         fault::MutationOpName(mutation.op).c_str());
    }
    // The loop must reach the verifier, not just the codec.
    EXPECT_GT(parsed_count, 20) << "wire v" << static_cast<int>(wire);
  }
}

shard::ShardOptions ShardConfig(bool batched, common::ThreadPool* pool) {
  shard::ShardOptions options;
  options.bounds = {120, 240};
  options.base.kind = AdsKind::kGem2;
  options.base.gem2.m = 2;
  options.base.gem2.smax = 16;
  options.base.wire_version = WireVersion::kV3;
  options.base.client.batched_hashing = batched;
  options.base.client.pool = pool;
  return options;
}

// Two identical sharded worlds, one verifying serially and one with batched
// hashing plus a client pool fanning the slices out: decisions, errors, and
// merged objects must match bit-for-bit, for honest composites and for every
// parse-surviving composite forgery.
TEST(BatchedVerify, PooledCompositeMatchesSerialBitForBit) {
  common::ThreadPool pool(3);
  shard::ShardedDb serial_db(ShardConfig(false, nullptr));
  shard::ShardedDb pooled_db(ShardConfig(true, &pool));
  for (Key k = 1; k <= 60; ++k) {
    const Object object{k * 5, "value-" + std::to_string(k % 3)};
    ASSERT_TRUE(serial_db.Insert(object).ok);
    ASSERT_TRUE(pooled_db.Insert(object).ok);
  }
  auto serial_states = serial_db.ReadChainState();
  auto pooled_states = pooled_db.ReadChainState();

  for (auto [lb, ub] : std::vector<std::pair<Key, Key>>{
           {40, 220}, {0, 300}, {130, 250}, {600, 900}}) {
    QueryResponse response = serial_db.Query(lb, ub);
    VerifiedResult serial = serial_db.VerifyAgainst(serial_states, response);
    VerifiedResult pooled = pooled_db.VerifyAgainst(pooled_states, response);
    ExpectBitIdentical(serial, pooled, "honest composite");
    EXPECT_TRUE(serial.ok) << serial.error;
  }

  fault::ResponseMutator mutator(fault::DeriveSeed(2727, 1), WireVersion::kV3);
  QueryResponse full = serial_db.Query(0, 300);
  ASSERT_EQ(full.slices.size(), 3u);
  int parsed_count = 0;
  for (int round = 0; round < 80; ++round) {
    fault::CompositeMutation mutation = mutator.MutateComposite(full);
    auto parsed = ParseResponse(mutation.wire);
    if (!parsed.has_value()) continue;
    ++parsed_count;
    VerifiedResult serial = serial_db.VerifyAgainst(serial_states, *parsed);
    VerifiedResult pooled = pooled_db.VerifyAgainst(pooled_states, *parsed);
    ExpectBitIdentical(serial, pooled,
                       fault::CompositeMutationOpName(mutation.op).c_str());
    EXPECT_FALSE(serial.ok) << "composite forgery accepted: "
                            << fault::CompositeMutationOpName(mutation.op);
  }
  EXPECT_GT(parsed_count, 20);
}

TEST(BatchedVerify, BatchedHashingIsTheDefaultAndV2TheWireDefault) {
  DbOptions options;
  EXPECT_TRUE(options.client.batched_hashing);
  EXPECT_EQ(options.client.pool, nullptr);
  EXPECT_EQ(options.wire_version, WireVersion::kV2);
}

}  // namespace
}  // namespace gem2::core
