// Light-client (SPV) tests: header-only sync, fork/PoW rejection, and
// VO_chain anchoring at the tip.
#include <gtest/gtest.h>

#include "chain/light_client.h"

#include "crypto/digest.h"
#include "core/authenticated_db.h"

namespace gem2::chain {
namespace {

Blockchain MakeChain(int blocks, uint32_t difficulty = 4) {
  Blockchain chain(difficulty);
  for (int i = 0; i < blocks; ++i) {
    Transaction tx;
    tx.seq = static_cast<uint64_t>(i);
    tx.contract = "ads";
    chain.Append({tx}, crypto::EmptyTreeDigest(), static_cast<uint64_t>(i));
  }
  return chain;
}

TEST(LightClient, SyncsHonestChain) {
  Blockchain chain = MakeChain(5);
  LightClient client(chain.blocks().front().header);
  EXPECT_EQ(client.Sync(chain), 5u);
  EXPECT_EQ(client.height(), 5u);
  EXPECT_EQ(client.tip().Digest(), chain.latest().header.Digest());
  // Re-sync is a no-op.
  EXPECT_EQ(client.Sync(chain), 0u);
}

TEST(LightClient, IncrementalSync) {
  Blockchain chain = MakeChain(2);
  LightClient client(chain.blocks().front().header);
  EXPECT_EQ(client.Sync(chain), 2u);
  chain.Append({}, crypto::EmptyTreeDigest(), 99);
  EXPECT_EQ(client.Sync(chain), 1u);
  EXPECT_EQ(client.height(), 3u);
}

TEST(LightClient, RejectsNonGenesisAnchor) {
  Blockchain chain = MakeChain(2);
  EXPECT_THROW(LightClient(chain.latest().header), std::invalid_argument);
}

TEST(LightClient, RejectsBrokenLinkage) {
  Blockchain chain = MakeChain(3);
  LightClient client(chain.blocks().front().header);
  client.Sync(chain);

  BlockHeader forged = chain.latest().header;
  forged.height += 1;
  forged.prev_hash = crypto::EmptyTreeDigest();  // wrong parent
  EXPECT_FALSE(client.Accept(forged));

  BlockHeader skip = chain.latest().header;
  skip.height += 2;  // gap
  EXPECT_FALSE(client.Accept(skip));
}

TEST(LightClient, RejectsInsufficientPow) {
  Blockchain chain = MakeChain(1, /*difficulty=*/12);
  LightClient client(chain.blocks().front().header);
  client.Sync(chain);

  BlockHeader next;
  next.height = client.height() + 1;
  next.prev_hash = client.tip().Digest();
  next.difficulty_bits = 12;
  next.nonce = 1;  // almost certainly fails 12-bit PoW
  if (SatisfiesPow(next.Digest(), 12)) GTEST_SKIP();  // astronomically unlikely
  EXPECT_FALSE(client.Accept(next));
}

TEST(LightClient, VerifiesStateOnlyAtTip) {
  core::DbOptions options;
  options.kind = core::AdsKind::kGem2;
  core::AuthenticatedDb db(options);
  db.Insert({1, "v"});

  Environment& env = db.environment();
  AuthenticatedState old_state = env.ReadAuthenticatedState("ads");

  LightClient client(env.blockchain().blocks().front().header);
  client.Sync(env.blockchain());
  EXPECT_TRUE(client.VerifyStateAtTip(old_state));

  // After more activity, the old state no longer anchors at the tip:
  // a stale-snapshot SP is caught here.
  db.Insert({2, "v"});
  AuthenticatedState fresh = env.ReadAuthenticatedState("ads");
  client.Sync(env.blockchain());
  std::string error;
  EXPECT_FALSE(client.VerifyStateAtTip(old_state, &error));
  EXPECT_TRUE(client.VerifyStateAtTip(fresh, &error)) << error;
}

TEST(LightClient, EndToEndVerifyUsesLightClient) {
  // AuthenticatedDb::Verify routes through the light client; a normal flow
  // must still verify across many blocks.
  core::DbOptions options;
  options.kind = core::AdsKind::kGem2;
  options.env.txs_per_block = 3;
  options.env.difficulty_bits = 4;
  core::AuthenticatedDb db(options);
  for (Key k = 1; k <= 40; ++k) {
    db.Insert({k, "v" + std::to_string(k)});
    if (k % 10 == 0) {
      core::VerifiedResult vr = db.AuthenticatedRange(1, k);
      ASSERT_TRUE(vr.ok) << vr.error;
      ASSERT_EQ(vr.objects.size(), static_cast<size_t>(k));
    }
  }
}

}  // namespace
}  // namespace gem2::chain
