// LSM-tree comparator tests (Section V-D): level structure, merge cascades,
// contract/mirror agreement, the write-amplified gas profile, and gasLimit
// aborts on large merges.
#include <gtest/gtest.h>

#include <random>

#include "ads/verify.h"
#include "crypto/digest.h"
#include "lsm/lsm.h"

namespace gem2::lsm {
namespace {

Hash Vh(Key k) { return crypto::ValueHash("value-" + std::to_string(k)); }

gas::Meter FreeMeter() { return gas::Meter(gas::kEthereumSchedule, 1ull << 60); }

LsmOptions SmallLsm() {
  LsmOptions o;
  o.level0_capacity = 4;
  o.fanout = 4;
  return o;
}

TEST(Lsm, LevelsStaySortedAndBounded) {
  LsmTreeContract contract("lsm", SmallLsm());
  std::mt19937_64 rng(9);
  std::vector<Key> keys;
  for (int i = 0; i < 200; ++i) {
    Key k;
    do {
      k = static_cast<Key>(rng() % 100'000);
    } while (std::find(keys.begin(), keys.end(), k) != keys.end());
    keys.push_back(k);
    gas::Meter meter = FreeMeter();
    contract.Insert(k, Vh(k), meter);

    for (size_t l = 0; l < contract.num_levels(); ++l) {
      const ads::EntryList& level = contract.level(l);
      EXPECT_LE(level.size(), SmallLsm().level0_capacity << l);
      for (size_t j = 1; j < level.size(); ++j) {
        EXPECT_LT(level[j - 1].key, level[j].key);
      }
    }
  }
  EXPECT_EQ(contract.size(), 200u);
  EXPECT_GE(contract.num_levels(), 5u);
}

TEST(Lsm, ContractAndMirrorLevelRootsAgree) {
  LsmTreeContract contract("lsm", SmallLsm());
  LsmMirror mirror(SmallLsm());
  std::mt19937_64 rng(10);
  std::vector<Key> keys;
  for (int i = 0; i < 150; ++i) {
    gas::Meter meter = FreeMeter();
    if (!keys.empty() && rng() % 4 == 0) {
      Key k = keys[rng() % keys.size()];
      Hash vh = crypto::ValueHash("u" + std::to_string(i));
      contract.Update(k, vh, meter);
      mirror.Update(k, vh);
    } else {
      Key k;
      do {
        k = static_cast<Key>(rng() % 50'000);
      } while (std::find(keys.begin(), keys.end(), k) != keys.end());
      keys.push_back(k);
      contract.Insert(k, Vh(k), meter);
      mirror.Insert(k, Vh(k));
    }
    ASSERT_EQ(contract.num_levels(), mirror.num_levels());
    for (size_t l = 0; l < contract.num_levels(); ++l) {
      ASSERT_EQ(contract.level_root(l), mirror.level_root(l))
          << "level " << l << " op " << i;
    }
  }
}

TEST(Lsm, QueriesAcrossLevelsVerify) {
  LsmTreeContract contract("lsm", SmallLsm());
  LsmMirror mirror(SmallLsm());
  for (Key k = 1; k <= 100; ++k) {
    gas::Meter meter = FreeMeter();
    contract.Insert(k * 11, Vh(k * 11), meter);
    mirror.Insert(k * 11, Vh(k * 11));
  }
  size_t found = 0;
  for (size_t l = 0; l < mirror.num_levels(); ++l) {
    ads::EntryList result;
    ads::TreeVo vo = mirror.RangeQuery(l, 100, 600, &result);
    std::vector<Object> objects;
    for (const ads::Entry& e : result) {
      objects.push_back({e.key, "value-" + std::to_string(e.key)});
    }
    auto outcome = ads::VerifyTreeVo(100, 600, vo, contract.level_root(l), objects);
    EXPECT_TRUE(outcome.ok) << "level " << l << ": " << outcome.error;
    found += result.size();
  }
  // 100..600 with stride 11: keys 110..594.
  EXPECT_EQ(found, 45u);
}

TEST(Lsm, MergeWritesWholeLevels) {
  LsmTreeContract contract("lsm", SmallLsm());
  // Fill L0 exactly; the next insert triggers the first merge.
  uint64_t merge_gas = 0;
  for (Key k = 1; k <= 5; ++k) {
    gas::Meter meter = FreeMeter();
    contract.Insert(k, Vh(k), meter);
    if (k == 5) merge_gas = meter.used();
  }
  // The merge rewrote 5 records into L1 (5 sstores) and cleared L0
  // (zero-stores), far exceeding a plain insert.
  gas::Meter plain = FreeMeter();
  contract.Insert(100, Vh(100), plain);
  EXPECT_GT(merge_gas, 2 * plain.used());
}

TEST(Lsm, GasGrowsWithDepthUnlikeGem2) {
  // Average insert gas across the first N inserts grows markedly from
  // N=64 to N=512 (each record is rewritten once per level it descends).
  auto avg_gas = [](int n) {
    LsmTreeContract contract("lsm", SmallLsm());
    uint64_t total = 0;
    for (Key k = 1; k <= n; ++k) {
      gas::Meter meter = FreeMeter();
      contract.Insert(k, Vh(k), meter);
      total += meter.used();
    }
    return total / static_cast<uint64_t>(n);
  };
  const uint64_t small = avg_gas(64);
  const uint64_t big = avg_gas(512);
  EXPECT_GT(big, small + 20'000);
}

TEST(Lsm, LargeMergeExceedsBlockGasLimit) {
  // The paper's observation: merges grow linearly with level size, so the
  // LSM-tree cannot be maintained past a modest database size under the
  // 8M block gasLimit.
  LsmTreeContract contract("lsm", {});
  bool aborted = false;
  for (Key k = 1; k <= 2000 && !aborted; ++k) {
    gas::Meter meter(gas::kEthereumSchedule, gas::kDefaultGasLimit);
    try {
      contract.Insert(k, Vh(k), meter);
    } catch (const gas::OutOfGasError&) {
      aborted = true;
      EXPECT_GT(k, 100);  // plenty of small inserts fit fine
    }
  }
  EXPECT_TRUE(aborted);
}

TEST(Lsm, UpdateRewritesInPlace) {
  LsmTreeContract contract("lsm", SmallLsm());
  for (Key k = 1; k <= 40; ++k) {
    gas::Meter meter = FreeMeter();
    contract.Insert(k, Vh(k), meter);
  }
  gas::Meter meter = FreeMeter();
  contract.Update(3, crypto::ValueHash("new"), meter);
  EXPECT_EQ(contract.size(), 40u);
  EXPECT_EQ(meter.op_counts().sstore, 0u);
  EXPECT_THROW(contract.Update(99, Vh(99), meter), std::invalid_argument);
}

}  // namespace
}  // namespace gem2::lsm
