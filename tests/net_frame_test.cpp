// Frame-protocol robustness: round-trips for every frame type, the no-copy
// BeginFrame/FinishFrame path is byte-identical to EncodeFrame, a frame
// truncated at EVERY offset never decodes, every single-byte flip is either
// rejected or visibly changes the decoded frame (mirroring wire_v3_test's
// discipline on the wire image), and the decoder fails closed — bad magic,
// unknown type, reserved bits, oversized lengths — and stays failed.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

#include "net/frame.h"
#include "seed_util.h"

namespace gem2::net {
namespace {

using testutil::SeedReporter;

Bytes BodyOf(const char* text) {
  return Bytes(reinterpret_cast<const uint8_t*>(text),
               reinterpret_cast<const uint8_t*>(text) + std::strlen(text));
}

/// Decodes exactly one frame from `bytes`; fails the test on error or if
/// trailing bytes remain.
Frame DecodeOne(const Bytes& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(decoder.buffered(), 0u);
  Frame none;
  EXPECT_EQ(decoder.Next(&none), FrameDecoder::Result::kNeedMore);
  return frame;
}

TEST(NetFrame, RoundTripsEveryType) {
  const struct {
    FrameType type;
    Bytes body;
  } cases[] = {
      {FrameType::kQuery, Bytes(16, 0xab)},
      {FrameType::kResponse, BodyOf("authenticated image bytes")},
      {FrameType::kBusy, Bytes{}},
      {FrameType::kError, BodyOf("diagnostic")},
  };
  uint64_t request_id = 1;
  for (const auto& c : cases) {
    const Bytes encoded = EncodeFrame(c.type, request_id, c.body);
    ASSERT_EQ(encoded.size(), kFrameHeaderBytes + c.body.size());
    const Frame frame = DecodeOne(encoded);
    EXPECT_EQ(frame.type, c.type);
    EXPECT_EQ(frame.request_id, request_id);
    EXPECT_EQ(frame.body, c.body);
    ++request_id;
  }
}

TEST(NetFrame, QueryBodyRoundTripsExtremeKeys) {
  const Key cases[][2] = {
      {0, 0},
      {-5, 17},
      {std::numeric_limits<Key>::min(), std::numeric_limits<Key>::max()},
      {-1, -1},
  };
  for (const auto& c : cases) {
    const Bytes encoded = EncodeQueryFrame(99, c[0], c[1]);
    const Frame frame = DecodeOne(encoded);
    ASSERT_EQ(frame.type, FrameType::kQuery);
    const auto body = ParseQueryBody(frame.body);
    ASSERT_TRUE(body.has_value());
    EXPECT_EQ(body->lb, c[0]);
    EXPECT_EQ(body->ub, c[1]);
  }
}

TEST(NetFrame, ParseQueryBodyRejectsWrongSize) {
  EXPECT_FALSE(ParseQueryBody(Bytes{}).has_value());
  EXPECT_FALSE(ParseQueryBody(Bytes(15, 0)).has_value());
  EXPECT_FALSE(ParseQueryBody(Bytes(17, 0)).has_value());
}

TEST(NetFrame, BeginFinishMatchesEncodeByteForByte) {
  const Bytes body = BodyOf("response image serialized in place");
  Bytes framed;
  framed.push_back(0xEE);  // pre-existing bytes must survive untouched
  const size_t header = BeginFrame(&framed, FrameType::kResponse, 7777);
  framed.insert(framed.end(), body.begin(), body.end());
  FinishFrame(&framed, header);

  const Bytes reference = EncodeFrame(FrameType::kResponse, 7777, body);
  ASSERT_EQ(framed.size(), 1 + reference.size());
  EXPECT_EQ(framed[0], 0xEE);
  EXPECT_TRUE(std::equal(reference.begin(), reference.end(),
                         framed.begin() + 1));
}

TEST(NetFrame, DecodesByteAtATime) {
  // A slow-loris sender dribbling one byte per read still decodes cleanly.
  const Bytes encoded = EncodeFrame(FrameType::kResponse, 5, BodyOf("drip"));
  FrameDecoder decoder;
  Frame frame;
  for (size_t i = 0; i < encoded.size(); ++i) {
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore)
        << "frame completed early at byte " << i;
    decoder.Feed(&encoded[i], 1);
  }
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.request_id, 5u);
  EXPECT_EQ(frame.body, BodyOf("drip"));
}

TEST(NetFrame, DecodesPipelinedFramesFromOneBuffer) {
  Bytes stream;
  for (uint64_t id = 0; id < 16; ++id) {
    const Bytes one = EncodeQueryFrame(id, Key(id) * 10, Key(id) * 10 + 5);
    stream.insert(stream.end(), one.begin(), one.end());
  }
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  for (uint64_t id = 0; id < 16; ++id) {
    Frame frame;
    ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
    EXPECT_EQ(frame.request_id, id);
    const auto body = ParseQueryBody(frame.body);
    ASSERT_TRUE(body.has_value());
    EXPECT_EQ(body->lb, Key(id) * 10);
  }
  Frame none;
  EXPECT_EQ(decoder.Next(&none), FrameDecoder::Result::kNeedMore);
}

TEST(NetFrame, TruncationAtEveryOffsetNeverYieldsAFrame) {
  const Bytes encoded =
      EncodeFrame(FrameType::kResponse, 123, BodyOf("truncate me anywhere"));
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(encoded.data(), cut);
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore)
        << "truncation at offset " << cut;
    EXPECT_FALSE(decoder.failed());
  }
}

TEST(NetFrame, EveryByteFlipIsRejectedOrVisiblyDifferent) {
  SeedReporter seed(20260808);
  const Bytes original =
      EncodeFrame(FrameType::kResponse, 0x0123456789abcdefull,
                  BodyOf("every byte of this frame is load-bearing"));
  const Frame reference = DecodeOne(original);
  for (size_t i = 0; i < original.size(); ++i) {
    for (uint8_t bit = 0; bit < 8; ++bit) {
      Bytes flipped = original;
      flipped[i] ^= uint8_t(1u << bit);
      FrameDecoder decoder;
      decoder.Feed(flipped.data(), flipped.size());
      Frame frame;
      const FrameDecoder::Result r = decoder.Next(&frame);
      if (r != FrameDecoder::Result::kFrame) continue;  // rejected: fine
      const bool identical = frame.type == reference.type &&
                             frame.request_id == reference.request_id &&
                             frame.body == reference.body;
      EXPECT_FALSE(identical)
          << "flip of byte " << i << " bit " << int(bit)
          << " decoded to a frame identical to the original";
    }
  }
}

TEST(NetFrame, Query2RoundTripsSpecShapes) {
  std::vector<core::QuerySpec> specs;
  specs.push_back(core::QuerySpec::Range(-10, 500));
  {
    core::QuerySpec both;
    both.op = core::BoolOp::kOr;
    both.predicates.push_back(
        core::Predicate{core::PredicateKind::kRange, 0, 1, 2});
    both.predicates.push_back(
        core::Predicate{core::PredicateKind::kRange, 3, -7, 7});
    specs.push_back(both);
    core::QuerySpec agg = core::QuerySpec::Range(0, 99, 1);
    agg.aggregate = core::AggregateKind::kSum;
    specs.push_back(agg);
  }
  uint64_t request_id = 40;
  for (const core::QuerySpec& spec : specs) {
    const Bytes encoded = EncodeQuery2Frame(request_id, spec);
    const Frame frame = DecodeOne(encoded);
    EXPECT_EQ(frame.type, FrameType::kQuery2);
    EXPECT_EQ(frame.request_id, request_id);
    const auto parsed = ParseQuery2Body(frame.body);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, spec);
    ++request_id;
  }
}

TEST(NetFrame, EncodeQuery2RefusesInvalidSpecs) {
  // An invalid spec must never reach the wire: the receiving decoder would
  // poison the connection.
  EXPECT_THROW(EncodeQuery2Frame(1, core::QuerySpec{}), std::invalid_argument);
  EXPECT_THROW(EncodeQuery2Frame(1, core::QuerySpec::Range(5, 4)),
               std::invalid_argument);
}

TEST(NetFrame, MalformedSpecBodyPoisonsDecoder) {
  // Spec validity is part of framing: a kQuery2 frame whose body is not one
  // valid canonical spec image kills the decoder like a bad magic would.
  const Bytes good = EncodeQuery2Frame(9, core::QuerySpec::Range(0, 10));
  for (const auto& mutate :
       {std::function<void(Bytes*)>([](Bytes* b) {
          b->pop_back();
          (*b)[19] = static_cast<uint8_t>((*b)[19] - 1);  // shrink length too
        }),
        std::function<void(Bytes*)>([](Bytes* b) {
          (*b)[kFrameHeaderBytes] = 7;  // unknown BoolOp tag
        }),
        std::function<void(Bytes*)>([](Bytes* b) {
          // Out-of-order bounds: parses structurally, fails Check.
          for (size_t i = 0; i < 8; ++i) {
            std::swap((*b)[kFrameHeaderBytes + 19 + i],
                      (*b)[kFrameHeaderBytes + 27 + i]);
          }
        })}) {
    Bytes bad = good;
    mutate(&bad);
    FrameDecoder decoder;
    decoder.Feed(bad.data(), bad.size());
    Frame frame;
    ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
    EXPECT_TRUE(decoder.failed());
    EXPECT_EQ(decoder.error(), "malformed query spec body");
    // Poisoned for good: a pristine frame cannot resurrect the stream.
    const Bytes fine = EncodeFrame(FrameType::kBusy, 2, {});
    decoder.Feed(fine.data(), fine.size());
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  }
}

TEST(NetFrame, LegacyQueryStillDecodesAlongsideQuery2) {
  // Both request generations interleave on one stream.
  Bytes stream = EncodeQueryFrame(1, 5, 9);
  const Bytes q2 = EncodeQuery2Frame(2, core::QuerySpec::Range(5, 9));
  stream.insert(stream.end(), q2.begin(), q2.end());
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.type, FrameType::kQuery);
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.type, FrameType::kQuery2);
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore);
}

TEST(NetFrame, RejectsBadMagic) {
  Bytes encoded = EncodeFrame(FrameType::kBusy, 1, {});
  encoded[0] = 'X';
  FrameDecoder decoder;
  decoder.Feed(encoded.data(), encoded.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  EXPECT_NE(decoder.error().find("magic"), std::string::npos);
}

TEST(NetFrame, RejectsUnknownTypeAndReservedBits) {
  for (const size_t tampered : {size_t{4}, size_t{5}, size_t{6}, size_t{7}}) {
    Bytes encoded = EncodeFrame(FrameType::kBusy, 1, {});
    encoded[tampered] = (tampered == 4) ? 0x7f : 0x01;
    FrameDecoder decoder;
    decoder.Feed(encoded.data(), encoded.size());
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError)
        << "tampered header byte " << tampered;
    EXPECT_TRUE(decoder.failed());
  }
}

TEST(NetFrame, RejectsOversizedFrameBeforeBufferingBody) {
  // Cap at 1 KiB; a header claiming 2 KiB is rejected from the header alone.
  FrameDecoder decoder(1024);
  Bytes header;
  AppendFrameHeader(&header, FrameType::kResponse, 1, 2048);
  decoder.Feed(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  EXPECT_NE(decoder.error().find("oversized"), std::string::npos);
}

TEST(NetFrame, DecoderStaysFailedAfterError) {
  Bytes bad = EncodeFrame(FrameType::kBusy, 1, {});
  bad[0] = 0;
  FrameDecoder decoder;
  decoder.Feed(bad.data(), bad.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  // A valid frame fed afterwards must NOT resurrect the stream: framing is
  // never resynchronized after damage.
  const Bytes good = EncodeFrame(FrameType::kBusy, 2, {});
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  EXPECT_TRUE(decoder.failed());
}

}  // namespace
}  // namespace gem2::net
