// Flaky-transport tests: the retrying client survives drops, duplicates,
// truncation, corruption, and reordering within its deadline, degrades
// gracefully when the network is hopeless, and every schedule is a pure
// function of the seed (virtual time — no sleeps, no wall-clock flakiness).
#include <gtest/gtest.h>

#include <memory>

#include "core/authenticated_db.h"
#include "fault/fault.h"
#include "fault/transport.h"
#include "seed_util.h"
#include "workload/workload.h"

namespace gem2::fault {
namespace {

using core::AdsKind;
using core::AuthenticatedDb;
using core::DbOptions;
using testutil::SeedReporter;

std::unique_ptr<AuthenticatedDb> MakeDb(uint64_t seed) {
  workload::WorkloadOptions wopts;
  wopts.domain_max = 100'000;
  wopts.seed = seed;
  workload::WorkloadGenerator gen(wopts);

  DbOptions options;
  options.kind = AdsKind::kGem2;
  options.gem2.m = 4;
  options.gem2.smax = 64;
  options.env.gas_limit = 1'000'000'000'000ull;
  auto db = std::make_unique<AuthenticatedDb>(options);
  for (const workload::Operation& op : gen.Batch(200)) {
    if (!db->Contains(op.object.key)) EXPECT_TRUE(db->Insert(op.object).ok);
  }
  return db;
}

TEST(Transport, CleanChannelSucceedsFirstAttempt) {
  SeedReporter seed(1);
  auto db = MakeDb(DeriveSeed(seed, 1));
  FlakyChannel channel({}, DeriveSeed(seed, 2));
  RetryingClient client(*db, channel, {}, DeriveSeed(seed, 3));

  ClientOutcome outcome = client.AuthenticatedRange(0, 100'000);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_FALSE(outcome.degraded);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.result.objects.size(), db->size());
  EXPECT_GT(outcome.elapsed_us, 0u);  // latency still accrues
}

class SingleFaultRecovery
    : public ::testing::TestWithParam<std::pair<const char*, ChannelOptions>> {};

TEST_P(SingleFaultRecovery, ClientRecoversWithinDeadline) {
  SeedReporter seed(42);
  auto db = MakeDb(DeriveSeed(seed, 1));
  FlakyChannel channel(GetParam().second, DeriveSeed(seed, 2));
  // A generous budget so recovery is near-certain under ANY seed (the
  // nightly job replays this test with a fresh one): ten attempts against a
  // 40% fault rate leaves ~1e-4 residual failure per query.
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.deadline_us = 400'000;
  RetryingClient client(*db, channel, policy, DeriveSeed(seed, 3));

  int ok = 0, recovered_after_retry = 0;
  for (int q = 0; q < 30; ++q) {
    ClientOutcome outcome = client.AuthenticatedRange(0, 100'000);
    if (outcome.ok) {
      ++ok;
      EXPECT_LE(outcome.elapsed_us, policy.deadline_us);
      EXPECT_EQ(outcome.result.objects.size(), db->size());
      if (outcome.attempts > 1) ++recovered_after_retry;
    } else {
      EXPECT_TRUE(outcome.degraded) << GetParam().first;
    }
  }
  EXPECT_GE(ok, 29) << GetParam().first;  // at most one freak loss per run
  // The channel actually misbehaved and the retry loop actually worked —
  // except for duplicates, which the client absorbs on the first attempt.
  if (std::string(GetParam().first) != "Duplicate") {
    EXPECT_GT(recovered_after_retry, 0) << GetParam().first;
  }
  EXPECT_GT(channel.stats().dropped + channel.stats().truncated +
                channel.stats().corrupted + channel.stats().duplicated,
            0u);
}

INSTANTIATE_TEST_SUITE_P(
    Faults, SingleFaultRecovery,
    ::testing::Values(
        std::pair<const char*, ChannelOptions>{"Drop", {.drop_rate = 0.4}},
        std::pair<const char*, ChannelOptions>{"Duplicate", {.duplicate_rate = 1.0}},
        std::pair<const char*, ChannelOptions>{"Truncate", {.truncate_rate = 0.4}},
        std::pair<const char*, ChannelOptions>{"Corrupt", {.corrupt_rate = 0.4}}),
    [](const auto& info) { return info.param.first; });

TEST(Transport, MixedFaultsMostQueriesRecover) {
  SeedReporter seed(2718);
  auto db = MakeDb(DeriveSeed(seed, 1));
  ChannelOptions faults;
  faults.drop_rate = 0.25;
  faults.corrupt_rate = 0.15;
  faults.truncate_rate = 0.10;
  faults.duplicate_rate = 0.20;
  faults.reorder_rate = 0.10;
  FlakyChannel channel(faults, DeriveSeed(seed, 2));
  RetryPolicy policy;
  RetryingClient client(*db, channel, policy, DeriveSeed(seed, 3));

  int ok = 0, degraded = 0;
  for (int q = 0; q < 50; ++q) {
    ClientOutcome outcome = client.AuthenticatedRange(0, 100'000);
    if (outcome.ok) {
      ++ok;
      EXPECT_EQ(outcome.result.objects.size(), db->size());
      EXPECT_LE(outcome.elapsed_us, policy.deadline_us);
    } else {
      // Losing a query to an extreme run of faults is legal; hanging,
      // throwing, or failing silently is not.
      ++degraded;
      EXPECT_TRUE(outcome.degraded);
      EXPECT_NE(outcome.error.find("degraded"), std::string::npos);
    }
  }
  EXPECT_GE(ok, 45) << degraded << " degraded";
}

TEST(Transport, HopelessChannelDegradesGracefully) {
  SeedReporter seed(13);
  auto db = MakeDb(DeriveSeed(seed, 1));
  FlakyChannel channel({.drop_rate = 1.0}, DeriveSeed(seed, 2));
  RetryPolicy policy;
  RetryingClient client(*db, channel, policy, DeriveSeed(seed, 3));

  ClientOutcome outcome = client.AuthenticatedRange(0, 100'000);
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_EQ(outcome.attempts, policy.max_attempts);
  EXPECT_NE(outcome.error.find("timed out"), std::string::npos);
  // Virtual elapsed time stays within the policy's own arithmetic: attempts
  // plus backoff, never an unbounded spin.
  EXPECT_LE(outcome.elapsed_us,
            policy.max_attempts * policy.attempt_timeout_us +
                policy.max_attempts * (policy.max_backoff_us +
                                       policy.max_backoff_us / 2));
}

TEST(Transport, CorruptOnlyChannelNeverYieldsWrongResults) {
  // Corruption can cost retries but must never surface as a wrong verified
  // answer — the client either returns the true result or degrades.
  SeedReporter seed(99);
  auto db = MakeDb(DeriveSeed(seed, 1));
  FlakyChannel channel({.corrupt_rate = 1.0}, DeriveSeed(seed, 2));
  RetryingClient client(*db, channel, {}, DeriveSeed(seed, 3));

  for (int q = 0; q < 10; ++q) {
    ClientOutcome outcome = client.AuthenticatedRange(100, 50'000);
    if (!outcome.ok) continue;  // degraded is acceptable here
    core::VerifiedResult truth = db->AuthenticatedRange(100, 50'000);
    ASSERT_TRUE(truth.ok);
    EXPECT_EQ(outcome.result.objects, truth.objects);
  }
}

TEST(Transport, BackoffIsCappedExponentialWithDeterministicJitter) {
  RetryPolicy policy;
  Rng rng_a(5);
  Rng rng_b(5);
  uint64_t prev = 0;
  for (uint32_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    const uint64_t a = policy.BackoffUs(attempt, rng_a);
    const uint64_t b = policy.BackoffUs(attempt, rng_b);
    EXPECT_EQ(a, b) << "attempt " << attempt;  // same seed, same schedule
    EXPECT_GE(a, policy.base_backoff_us);
    EXPECT_LE(a, policy.max_backoff_us + policy.max_backoff_us / 2);
    if (attempt > 1 && prev < policy.max_backoff_us / 2) {
      EXPECT_GT(a, prev);  // grows until the cap region
    }
    prev = a;
  }
}

TEST(Transport, WholeScheduleReproducesFromSeeds) {
  SeedReporter seed(777);
  ChannelOptions faults;
  faults.drop_rate = 0.3;
  faults.truncate_rate = 0.2;
  faults.duplicate_rate = 0.2;

  auto run = [&] {
    auto db = MakeDb(DeriveSeed(seed, 1));
    FlakyChannel channel(faults, DeriveSeed(seed, 2));
    RetryingClient client(*db, channel, {}, DeriveSeed(seed, 3));
    std::vector<std::pair<uint32_t, uint64_t>> trace;
    for (int q = 0; q < 20; ++q) {
      ClientOutcome outcome = client.AuthenticatedRange(0, 100'000);
      trace.emplace_back(outcome.attempts, outcome.elapsed_us);
    }
    return std::make_pair(trace, channel.stats());
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

}  // namespace
}  // namespace gem2::fault
