// Deletion tests (paper Section V-B: deletion = update with a dummy object).
// Tombstoned objects keep participating in every digest and completeness
// proof; the client filters them from verified results.
#include <gtest/gtest.h>

#include "core/authenticated_db.h"
#include "core/tombstone.h"

namespace gem2::core {
namespace {

DbOptions Options(AdsKind kind) {
  DbOptions o;
  o.kind = kind;
  o.gem2.m = 2;
  o.gem2.smax = 16;
  if (kind == AdsKind::kGem2Star) o.split_points = {50};
  o.env.gas_limit = 1'000'000'000'000ull;
  return o;
}

class DeletionTest : public ::testing::TestWithParam<AdsKind> {};

TEST_P(DeletionTest, DeletedKeysVanishFromVerifiedResults) {
  AuthenticatedDb db(Options(GetParam()));
  for (Key k = 1; k <= 30; ++k) db.Insert({k, "v" + std::to_string(k)});
  ASSERT_EQ(db.size(), 30u);

  db.Delete(5);
  db.Delete(17);
  EXPECT_EQ(db.size(), 28u);
  EXPECT_FALSE(db.Contains(5));
  EXPECT_TRUE(db.Contains(6));

  VerifiedResult vr = db.AuthenticatedRange(1, 30);
  ASSERT_TRUE(vr.ok) << vr.error;
  EXPECT_EQ(vr.objects.size(), 28u);
  EXPECT_EQ(vr.tombstones_filtered, 2u);
  for (const Object& obj : vr.objects) {
    EXPECT_NE(obj.key, 5);
    EXPECT_NE(obj.key, 17);
  }
  db.CheckConsistency();
}

TEST_P(DeletionTest, ReinsertRevivesDeletedKey) {
  AuthenticatedDb db(Options(GetParam()));
  db.Insert({7, "first"});
  db.Delete(7);
  EXPECT_FALSE(db.Contains(7));
  db.Insert({7, "second"});
  EXPECT_TRUE(db.Contains(7));
  EXPECT_EQ(db.size(), 1u);

  VerifiedResult vr = db.AuthenticatedRange(7, 7);
  ASSERT_TRUE(vr.ok) << vr.error;
  ASSERT_EQ(vr.objects.size(), 1u);
  EXPECT_EQ(vr.objects[0].value, "second");
  db.CheckConsistency();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DeletionTest,
                         ::testing::Values(AdsKind::kMbTree, AdsKind::kSmbTree,
                                           AdsKind::kLsm, AdsKind::kGem2,
                                           AdsKind::kGem2Star),
                         [](const auto& info) {
                           switch (info.param) {
                             case AdsKind::kMbTree:
                               return "MbTree";
                             case AdsKind::kSmbTree:
                               return "SmbTree";
                             case AdsKind::kLsm:
                               return "Lsm";
                             case AdsKind::kGem2:
                               return "Gem2";
                             case AdsKind::kGem2Star:
                               return "Gem2Star";
                           }
                           return "Unknown";
                         });

TEST(Deletion, ErrorsOnBogusOperations) {
  AuthenticatedDb db(Options(AdsKind::kGem2));
  EXPECT_THROW(db.Delete(1), std::invalid_argument);
  db.Insert({1, "v"});
  db.Delete(1);
  EXPECT_THROW(db.Delete(1), std::invalid_argument);          // already deleted
  EXPECT_THROW(db.Update({1, "nv"}), std::invalid_argument);  // deleted
  // Re-inserting a deleted key revives it (not an error).
  EXPECT_TRUE(db.Insert({1, "v2"}).ok);
  // Inserting a live key is an error.
  EXPECT_THROW(db.Insert({1, "v3"}), std::invalid_argument);
}

TEST(Deletion, TombstoneValueIsUnambiguous) {
  EXPECT_TRUE(IsTombstone(TombstoneValue()));
  EXPECT_FALSE(IsTombstone(""));
  EXPECT_FALSE(IsTombstone("GEM2_TOMBSTONE"));
  EXPECT_EQ(TombstoneValue().size(), 16u);
  EXPECT_EQ(TombstoneValue()[0], '\0');
}

TEST(Deletion, SpCannotHideTombstones) {
  // A malicious SP cannot silently drop tombstoned objects from the response:
  // they are part of the digests like any other entry.
  AuthenticatedDb db(Options(AdsKind::kGem2));
  for (Key k = 1; k <= 10; ++k) db.Insert({k, "v"});
  db.Delete(4);

  QueryResponse r = db.Query(1, 10);
  for (auto& tree : r.trees) {
    std::erase_if(tree.objects, [](const Object& o) { return o.key == 4; });
  }
  EXPECT_FALSE(db.Verify(r).ok);
}

TEST(Deletion, DeleteThenRangeOnOtherKeysUnaffected) {
  AuthenticatedDb db(Options(AdsKind::kGem2));
  for (Key k = 1; k <= 20; ++k) db.Insert({k, "v" + std::to_string(k)});
  auto before = db.ChainDigests();
  db.Delete(10);
  // Deletion is an on-chain update: the digest set changes.
  EXPECT_NE(db.ChainDigests(), before);
  VerifiedResult vr = db.AuthenticatedRange(1, 9);
  ASSERT_TRUE(vr.ok);
  EXPECT_EQ(vr.objects.size(), 9u);
  EXPECT_EQ(vr.tombstones_filtered, 0u);  // 10 outside the queried range
}

}  // namespace
}  // namespace gem2::core
