// Crash-recovery tests: an SP rebuilt from the durable journal matches the
// on-chain commitment bit-for-bit and resumes service; a recovery that lost
// the journal's tail is caught by the client; and a randomized gas-limit
// sweep shows out-of-gas rollback leaves state identical to never having run
// the transaction.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>

#include "core/authenticated_db.h"
#include "fault/fault.h"
#include "fault/recovery.h"
#include "seed_util.h"
#include "workload/workload.h"

namespace gem2::fault {
namespace {

using core::AdsKind;
using core::AuthenticatedDb;
using core::DbOptions;
using testutil::SeedReporter;

DbOptions MakeOptions(AdsKind kind) {
  DbOptions options;
  options.kind = kind;
  options.gem2.m = 4;
  options.gem2.smax = 64;
  options.env.gas_limit = 1'000'000'000'000ull;
  if (kind == AdsKind::kGem2Star) options.split_points = {250'000, 500'000, 750'000};
  return options;
}

class CrashRecovery : public ::testing::TestWithParam<AdsKind> {};

TEST_P(CrashRecovery, RebuiltSpMatchesChainCommitmentBitForBit) {
  SeedReporter seed(6060);
  const size_t ops =
      (GetParam() == AdsKind::kSmbTree || GetParam() == AdsKind::kLsm) ? 80 : 200;
  CrashReport report = CrashAndRecover(MakeOptions(GetParam()), seed, ops);

  EXPECT_EQ(report.replayed, report.total_ops);  // post-commit journal: no loss
  EXPECT_TRUE(report.digests_match) << report.error;
  EXPECT_TRUE(report.state_root_match) << report.error;
  EXPECT_TRUE(report.query_ok) << report.error;
  EXPECT_TRUE(report.resumed) << report.error;
}

TEST_P(CrashRecovery, RecoveryIsDeterministic) {
  SeedReporter seed(8899);
  const CrashReport a = CrashAndRecover(MakeOptions(GetParam()), seed, 60);
  const CrashReport b = CrashAndRecover(MakeOptions(GetParam()), seed, 60);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.replayed, b.replayed);
  EXPECT_EQ(a.digests_match, b.digests_match);
  EXPECT_EQ(a.state_root_match, b.state_root_match);
  EXPECT_EQ(a.error, b.error);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CrashRecovery,
                         ::testing::Values(AdsKind::kMbTree, AdsKind::kSmbTree,
                                           AdsKind::kLsm, AdsKind::kGem2,
                                           AdsKind::kGem2Star),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case AdsKind::kMbTree: return "MbTree";
                             case AdsKind::kSmbTree: return "SmbTree";
                             case AdsKind::kLsm: return "Lsm";
                             case AdsKind::kGem2: return "Gem2";
                             case AdsKind::kGem2Star: return "Gem2Star";
                           }
                           return "Unknown";
                         });

TEST(CrashRecovery, TruncatedJournalCannotServeTheCurrentChain) {
  // A crash that lost the tail of the durable log: the SP rebuilds from a
  // prefix and comes up self-consistent — but the client, verifying against
  // the REAL chain's digests, catches the staleness.
  SeedReporter seed(1212);
  workload::WorkloadOptions wopts;
  wopts.domain_max = 1'000'000;
  wopts.seed = DeriveSeed(seed, 1);
  workload::WorkloadGenerator gen(wopts);

  AuthenticatedDb reference(MakeOptions(AdsKind::kGem2));
  for (const workload::Operation& op : gen.Batch(120)) {
    if (!reference.Contains(op.object.key)) {
      ASSERT_TRUE(reference.Insert(op.object).ok);
    }
  }

  const core::Journal lost_tail = reference.journal().Prefix(
      reference.journal().size() / 2);
  std::unique_ptr<AuthenticatedDb> stale =
      AuthenticatedDb::Replay(MakeOptions(AdsKind::kGem2), lost_tail);

  // Self-consistent in isolation...
  EXPECT_TRUE(stale->AuthenticatedRange(kKeyMin, kKeyMax).ok);
  // ...but its answers cannot verify against the chain that kept going.
  core::VerifiedResult cross =
      CrossVerifyAgainst(reference, *stale, kKeyMin, kKeyMax);
  EXPECT_FALSE(cross.ok);
  EXPECT_FALSE(cross.error.empty());

  // The full journal, by contrast, cross-verifies cleanly.
  std::unique_ptr<AuthenticatedDb> complete =
      AuthenticatedDb::Replay(MakeOptions(AdsKind::kGem2), reference.journal());
  EXPECT_TRUE(CrossVerifyAgainst(reference, *complete, kKeyMin, kKeyMax).ok);
}

TEST(CrashRecovery, TornTailTruncatesAndTheClientCatchesTheStaleness) {
  // Power cut sheared bytes off the final segment mid-record: recovery
  // truncates to the valid prefix (tail-lost, not corruption), and the
  // rebuilt SP — missing acked ops — no longer matches the chain commitment.
  SeedReporter seed(7711);
  CrashReport report = CrashAndRecoverDamaged(MakeOptions(AdsKind::kGem2),
                                              seed, 100,
                                              /*torn_tail_bytes=*/37,
                                              /*flip_offset=*/-1,
                                              /*flip_mask=*/0);
  EXPECT_FALSE(report.failed_closed) << report.error;
  EXPECT_TRUE(report.tail_lost);
  EXPECT_GT(report.truncated_bytes, 0u);
  EXPECT_LT(report.replayed, report.total_ops);
  EXPECT_FALSE(report.digests_match);  // the client's anchor catches it
}

TEST(CrashRecovery, MidStreamBitRotFailsClosed) {
  // One flipped bit early in the durable log, with valid records after it:
  // unattributable damage. Recovery must refuse to serve anything rather
  // than resync past the hole.
  SeedReporter seed(7722);
  CrashReport report = CrashAndRecoverDamaged(MakeOptions(AdsKind::kGem2),
                                              seed, 100,
                                              /*torn_tail_bytes=*/0,
                                              /*flip_offset=*/40,
                                              /*flip_mask=*/0x40);
  EXPECT_TRUE(report.failed_closed);
  EXPECT_EQ(report.replayed, 0u);
  EXPECT_EQ(report.corrupt_records, 1u);
  EXPECT_FALSE(report.digests_match);
  EXPECT_NE(report.error.find("failed closed"), std::string::npos)
      << report.error;
}

TEST(CrashRecovery, DamagedRecoveryIsDeterministic) {
  SeedReporter seed(7733);
  const CrashReport a = CrashAndRecoverDamaged(MakeOptions(AdsKind::kGem2),
                                               seed, 60, 21, -1, 0);
  const CrashReport b = CrashAndRecoverDamaged(MakeOptions(AdsKind::kGem2),
                                               seed, 60, 21, -1, 0);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.replayed, b.replayed);
  EXPECT_EQ(a.truncated_bytes, b.truncated_bytes);
  EXPECT_EQ(a.tail_lost, b.tail_lost);
  EXPECT_EQ(a.failed_closed, b.failed_closed);
  EXPECT_EQ(a.error, b.error);
}

TEST(CrashRecovery, RecoverFromPrefixVerdictTracksWhatTheTailHeld) {
  // The one-call client check: a stale SP (lost tail) fails verification
  // against the live chain; a complete one passes.
  SeedReporter seed(7744);
  workload::WorkloadOptions wopts;
  wopts.domain_max = 1'000'000;
  wopts.seed = DeriveSeed(seed, 3);
  workload::WorkloadGenerator gen(wopts);
  AuthenticatedDb reference(MakeOptions(AdsKind::kGem2));
  for (const workload::Operation& op : gen.Batch(90)) {
    if (!reference.Contains(op.object.key)) {
      ASSERT_TRUE(reference.Insert(op.object).ok);
    }
  }

  core::VerifiedResult stale =
      RecoverFromPrefix(MakeOptions(AdsKind::kGem2), reference,
                        reference.journal().size() / 2, kKeyMin, kKeyMax);
  EXPECT_FALSE(stale.ok);
  EXPECT_FALSE(stale.error.empty());

  core::VerifiedResult complete =
      RecoverFromPrefix(MakeOptions(AdsKind::kGem2), reference,
                        reference.journal().size(), kKeyMin, kKeyMax);
  EXPECT_TRUE(complete.ok) << complete.error;
}

TEST(GasSweep, AbortedTransactionsLeaveNoTrace) {
  SeedReporter seed(4242);
  GasSweepReport report = GasLimitSweep(MakeOptions(AdsKind::kGem2), seed, 40);

  EXPECT_EQ(report.draws, 40);
  EXPECT_EQ(report.aborted + report.committed, report.draws);
  // The log-uniform limit range straddles the batch cost: the sweep must
  // actually exercise both outcomes to prove anything.
  EXPECT_GT(report.aborted, 0);
  EXPECT_GT(report.committed, 0);
  EXPECT_TRUE(report.state_preserved) << report.error;
}

TEST(GasSweep, SweepReproducesFromSeedAlone) {
  SeedReporter seed(5353);
  const GasSweepReport a = GasLimitSweep(MakeOptions(AdsKind::kGem2), seed, 12);
  const GasSweepReport b = GasLimitSweep(MakeOptions(AdsKind::kGem2), seed, 12);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.state_preserved) << a.error;
}

TEST(GasSweep, CoversOtherAdsKinds) {
  // The rollback property is ADS-independent; spot-check the baselines with
  // a smaller sweep.
  SeedReporter seed(6464);
  for (AdsKind kind : {AdsKind::kMbTree, AdsKind::kGem2Star}) {
    GasSweepReport report = GasLimitSweep(MakeOptions(kind), DeriveSeed(seed, 7), 12);
    EXPECT_TRUE(report.state_preserved)
        << core::AdsKindName(kind) << ": " << report.error;
    EXPECT_EQ(report.aborted + report.committed, report.draws);
  }
}

}  // namespace
}  // namespace gem2::fault
