// SP -> client wire protocol tests: responses round-trip through bytes with
// identical verification outcomes; corrupted images never verify.
#include <gtest/gtest.h>

#include <random>

#include "ads/vo.h"
#include "core/authenticated_db.h"
#include "core/wire.h"

namespace gem2::core {
namespace {

std::unique_ptr<AuthenticatedDb> MakeDb(AdsKind kind) {
  DbOptions options;
  options.kind = kind;
  options.gem2.m = 2;
  options.gem2.smax = 16;
  if (kind == AdsKind::kGem2Star) options.split_points = {100, 200};
  auto db = std::make_unique<AuthenticatedDb>(options);
  for (Key k = 1; k <= 60; ++k) db->Insert({k * 5, "value-" + std::to_string(k)});
  return db;
}

class WireTest : public ::testing::TestWithParam<AdsKind> {};

TEST_P(WireTest, RoundTripsAndVerifies) {
  auto db = MakeDb(GetParam());
  QueryResponse response = db->Query(40, 220);
  Bytes wire = SerializeResponse(response);

  auto parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->lb, response.lb);
  EXPECT_EQ(parsed->ub, response.ub);
  EXPECT_EQ(parsed->trees.size(), response.trees.size());
  EXPECT_EQ(parsed->upper_splits, response.upper_splits);

  VerifiedResult direct = db->Verify(response);
  VerifiedResult via_wire = db->VerifyFor(40, 220, *parsed);
  ASSERT_TRUE(direct.ok) << direct.error;
  ASSERT_TRUE(via_wire.ok) << via_wire.error;
  EXPECT_EQ(via_wire.objects, direct.objects);
  EXPECT_EQ(SerializeResponse(*parsed), wire);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WireTest,
                         ::testing::Values(AdsKind::kMbTree, AdsKind::kSmbTree,
                                           AdsKind::kLsm, AdsKind::kGem2,
                                           AdsKind::kGem2Star),
                         [](const auto& info) {
                           switch (info.param) {
                             case AdsKind::kMbTree:
                               return "MbTree";
                             case AdsKind::kSmbTree:
                               return "SmbTree";
                             case AdsKind::kLsm:
                               return "Lsm";
                             case AdsKind::kGem2:
                               return "Gem2";
                             case AdsKind::kGem2Star:
                               return "Gem2Star";
                           }
                           return "Unknown";
                         });

TEST_P(WireTest, EmptyResultSetRoundTrips) {
  // Keys live at 5..300; this range is past all of them: a completeness
  // proof with zero results still has to cross the wire intact.
  auto db = MakeDb(GetParam());
  QueryResponse response = db->Query(600, 900);
  Bytes wire = SerializeResponse(response);
  auto parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.has_value());
  VerifiedResult vr = db->VerifyFor(600, 900, *parsed);
  ASSERT_TRUE(vr.ok) << vr.error;
  EXPECT_TRUE(vr.objects.empty());
  EXPECT_EQ(SerializeResponse(*parsed), wire);
}

TEST_P(WireTest, SingleEntryResultRoundTrips) {
  auto db = MakeDb(GetParam());
  QueryResponse response = db->Query(150, 150);  // exactly key 30*5
  Bytes wire = SerializeResponse(response);
  auto parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.has_value());
  VerifiedResult vr = db->VerifyFor(150, 150, *parsed);
  ASSERT_TRUE(vr.ok) << vr.error;
  ASSERT_EQ(vr.objects.size(), 1u);
  EXPECT_EQ(vr.objects[0].key, 150);
  EXPECT_EQ(SerializeResponse(*parsed), wire);
}

TEST(Wire, EmptyDatabaseFullRangeRoundTrips) {
  DbOptions options;
  options.kind = AdsKind::kGem2;
  AuthenticatedDb db(options);
  QueryResponse response = db.Query(kKeyMin, kKeyMax);
  Bytes wire = SerializeResponse(response);
  auto parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.has_value());
  VerifiedResult vr = db.VerifyFor(kKeyMin, kKeyMax, *parsed);
  ASSERT_TRUE(vr.ok) << vr.error;
  EXPECT_TRUE(vr.objects.empty());
  EXPECT_EQ(SerializeResponse(*parsed), wire);
}

TEST(Wire, VoNestingAtTheCapParsesAndAboveIsRejected) {
  // Hand-built wire image: `nodes` single-child node frames wrapped around
  // one result entry. Real trees never nest anywhere near this deep, but the
  // codec parses adversarial bytes and must bound its own recursion.
  auto deep = [](uint32_t nodes) {
    Bytes b;
    b.push_back(1);  // TreeVo: root present
    for (uint32_t i = 0; i < nodes; ++i) {
      b.push_back(4);  // node tag
      b.push_back(0);  // child count, big-endian 1
      b.push_back(1);
    }
    b.push_back(1);  // result-entry tag
    for (int i = 0; i < 8; ++i) b.push_back(0);  // key = 0
    return b;
  };

  auto at_cap = ads::ParseTreeVo(deep(ads::kMaxVoDepth));
  ASSERT_TRUE(at_cap.has_value());
  EXPECT_EQ(ads::SerializeTreeVo(*at_cap), deep(ads::kMaxVoDepth));

  EXPECT_FALSE(ads::ParseTreeVo(deep(ads::kMaxVoDepth + 1)).has_value());
  EXPECT_FALSE(ads::ParseTreeVo(deep(ads::kMaxVoDepth + 100)).has_value());
}

TEST(Wire, RejectsMalformedInput) {
  EXPECT_FALSE(ParseResponse({}).has_value());
  EXPECT_FALSE(ParseResponse({7}).has_value());
  auto db = MakeDb(AdsKind::kGem2);
  Bytes wire = SerializeResponse(db->Query(0, 1000));
  Bytes truncated(wire.begin(), wire.begin() + wire.size() / 3);
  EXPECT_FALSE(ParseResponse(truncated).has_value());
  Bytes padded = wire;
  padded.push_back(1);
  EXPECT_FALSE(ParseResponse(padded).has_value());
}

TEST(Wire, VersionAndKindTagsAreEnforced) {
  auto db = MakeDb(AdsKind::kGem2);
  Bytes wire = SerializeResponse(db->Query(0, 1000));
  ASSERT_GE(wire.size(), 2u);
  EXPECT_EQ(wire[0], 2);  // current format version
  EXPECT_EQ(wire[1], 0);  // kind: single

  // Unknown (older or future) versions fail parsing... (3 is the compressed
  // v3 format, covered by wire_v3_test; relabeling a v2 body as v3 is the
  // mutator's kVersionByteConfusion operator.)
  for (uint8_t v : {0, 1, 4, 255}) {
    Bytes other = wire;
    other[0] = v;
    EXPECT_FALSE(ParseResponse(other).has_value()) << "version " << int(v);
  }
  // ...and so does an unknown response-kind tag.
  for (uint8_t k : {2, 7, 255}) {
    Bytes other = wire;
    other[1] = k;
    EXPECT_FALSE(ParseResponse(other).has_value()) << "kind " << int(k);
  }
  // VerifyWire surfaces both as a failed result, never an exception.
  Bytes old_version = wire;
  old_version[0] = 1;
  VerifiedResult vr = db->VerifyWire(0, 1000, old_version);
  EXPECT_FALSE(vr.ok);
  EXPECT_EQ(vr.error, "malformed wire image");
}

TEST(Wire, CompositeRoundTripsAndRejectsTruncation) {
  auto db = MakeDb(AdsKind::kGem2);
  QueryResponse composite;
  composite.lb = 40;
  composite.ub = 220;
  composite.slices.push_back({0, db->Query(40, 100)});
  composite.slices.push_back({1, db->Query(101, 220)});

  Bytes wire = SerializeResponse(composite);
  ASSERT_GE(wire.size(), 2u);
  EXPECT_EQ(wire[0], 2);
  EXPECT_EQ(wire[1], 1);  // kind: composite

  auto parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->lb, composite.lb);
  EXPECT_EQ(parsed->ub, composite.ub);
  EXPECT_TRUE(parsed->trees.empty());
  ASSERT_EQ(parsed->slices.size(), 2u);
  EXPECT_EQ(parsed->slices[0].shard, 0u);
  EXPECT_EQ(parsed->slices[1].shard, 1u);
  EXPECT_EQ(parsed->slices[0].response.lb, 40);
  EXPECT_EQ(parsed->slices[0].response.ub, 100);
  EXPECT_EQ(parsed->slices[1].response.lb, 101);
  EXPECT_EQ(parsed->slices[1].response.ub, 220);
  EXPECT_EQ(SerializeResponse(*parsed), wire);

  // Truncation anywhere must fail parsing, never crash or misparse.
  for (size_t cut : {wire.size() - 1, wire.size() / 2, wire.size() / 4, size_t{3}}) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(ParseResponse(truncated).has_value()) << "cut at " << cut;
  }
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(ParseResponse(padded).has_value());
}

TEST(Wire, NestedCompositeSlicesAreRejected) {
  auto db = MakeDb(AdsKind::kGem2);
  QueryResponse inner_composite;
  inner_composite.lb = 0;
  inner_composite.ub = 100;
  inner_composite.slices.push_back({0, db->Query(0, 100)});

  QueryResponse nested;
  nested.lb = 0;
  nested.ub = 100;
  nested.slices.push_back({0, std::move(inner_composite)});
  // The slice serializes as a composite image, which the parser refuses to
  // embed: composites never nest.
  EXPECT_FALSE(ParseResponse(SerializeResponse(nested)).has_value());
}

TEST(Wire, CorruptedImagesNeverVerify) {
  auto db = MakeDb(AdsKind::kGem2);
  QueryResponse response = db->Query(0, 1000);
  ASSERT_TRUE(db->Verify(response).ok);
  Bytes wire = SerializeResponse(response);

  std::mt19937_64 rng(77);
  int parsed_count = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Bytes bad = wire;
    bad[rng() % bad.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
    if (bad == wire) continue;
    auto parsed = ParseResponse(bad);
    if (!parsed.has_value()) continue;
    ++parsed_count;
    // Anything that still parses must fail verification against the range
    // the client actually issued — unless the flip only touched redundant
    // framing, in which case the canonical re-serialization must equal the
    // original (nothing changed).
    VerifiedResult vr = db->VerifyFor(0, 1000, *parsed);
    if (vr.ok) {
      EXPECT_EQ(SerializeResponse(*parsed), wire) << "trial " << trial;
    }
  }
  EXPECT_GT(parsed_count, 0);
}

TEST(Wire, SizeTracksVoAccounting) {
  auto db = MakeDb(AdsKind::kGem2);
  QueryResponse response = db->Query(50, 150);
  // The wire image contains the proof bytes plus the raw payloads and
  // framing; it must dominate the accounted VO size.
  EXPECT_GE(SerializeResponse(response).size(), VoSpBytes(response));
}

}  // namespace
}  // namespace gem2::core
