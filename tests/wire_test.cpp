// SP -> client wire protocol tests: responses round-trip through bytes with
// identical verification outcomes; corrupted images never verify.
#include <gtest/gtest.h>

#include <random>

#include "core/authenticated_db.h"
#include "core/wire.h"

namespace gem2::core {
namespace {

std::unique_ptr<AuthenticatedDb> MakeDb(AdsKind kind) {
  DbOptions options;
  options.kind = kind;
  options.gem2.m = 2;
  options.gem2.smax = 16;
  if (kind == AdsKind::kGem2Star) options.split_points = {100, 200};
  auto db = std::make_unique<AuthenticatedDb>(options);
  for (Key k = 1; k <= 60; ++k) db->Insert({k * 5, "value-" + std::to_string(k)});
  return db;
}

class WireTest : public ::testing::TestWithParam<AdsKind> {};

TEST_P(WireTest, RoundTripsAndVerifies) {
  auto db = MakeDb(GetParam());
  QueryResponse response = db->Query(40, 220);
  Bytes wire = SerializeResponse(response);

  auto parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->lb, response.lb);
  EXPECT_EQ(parsed->ub, response.ub);
  EXPECT_EQ(parsed->trees.size(), response.trees.size());
  EXPECT_EQ(parsed->upper_splits, response.upper_splits);

  VerifiedResult direct = db->Verify(response);
  VerifiedResult via_wire = db->VerifyFor(40, 220, *parsed);
  ASSERT_TRUE(direct.ok) << direct.error;
  ASSERT_TRUE(via_wire.ok) << via_wire.error;
  EXPECT_EQ(via_wire.objects, direct.objects);
  EXPECT_EQ(SerializeResponse(*parsed), wire);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WireTest,
                         ::testing::Values(AdsKind::kMbTree, AdsKind::kSmbTree,
                                           AdsKind::kLsm, AdsKind::kGem2,
                                           AdsKind::kGem2Star),
                         [](const auto& info) {
                           switch (info.param) {
                             case AdsKind::kMbTree:
                               return "MbTree";
                             case AdsKind::kSmbTree:
                               return "SmbTree";
                             case AdsKind::kLsm:
                               return "Lsm";
                             case AdsKind::kGem2:
                               return "Gem2";
                             case AdsKind::kGem2Star:
                               return "Gem2Star";
                           }
                           return "Unknown";
                         });

TEST(Wire, RejectsMalformedInput) {
  EXPECT_FALSE(ParseResponse({}).has_value());
  EXPECT_FALSE(ParseResponse({7}).has_value());
  auto db = MakeDb(AdsKind::kGem2);
  Bytes wire = SerializeResponse(db->Query(0, 1000));
  Bytes truncated(wire.begin(), wire.begin() + wire.size() / 3);
  EXPECT_FALSE(ParseResponse(truncated).has_value());
  Bytes padded = wire;
  padded.push_back(1);
  EXPECT_FALSE(ParseResponse(padded).has_value());
}

TEST(Wire, CorruptedImagesNeverVerify) {
  auto db = MakeDb(AdsKind::kGem2);
  QueryResponse response = db->Query(0, 1000);
  ASSERT_TRUE(db->Verify(response).ok);
  Bytes wire = SerializeResponse(response);

  std::mt19937_64 rng(77);
  int parsed_count = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Bytes bad = wire;
    bad[rng() % bad.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
    if (bad == wire) continue;
    auto parsed = ParseResponse(bad);
    if (!parsed.has_value()) continue;
    ++parsed_count;
    // Anything that still parses must fail verification against the range
    // the client actually issued — unless the flip only touched redundant
    // framing, in which case the canonical re-serialization must equal the
    // original (nothing changed).
    VerifiedResult vr = db->VerifyFor(0, 1000, *parsed);
    if (vr.ok) {
      EXPECT_EQ(SerializeResponse(*parsed), wire) << "trial " << trial;
    }
  }
  EXPECT_GT(parsed_count, 0);
}

TEST(Wire, SizeTracksVoAccounting) {
  auto db = MakeDb(AdsKind::kGem2);
  QueryResponse response = db->Query(50, 150);
  // The wire image contains the proof bytes plus the raw payloads and
  // framing; it must dominate the accounted VO size.
  EXPECT_GE(SerializeResponse(response).size(), VoSpBytes(response));
}

}  // namespace
}  // namespace gem2::core
