// Randomized property tests ("poor man's fuzzing", fully deterministic):
//  - arbitrary byte mutations of serialized VOs must never verify,
//  - the MB-tree must agree with a std::map model under random op streams,
//  - the metered GEM2 contract must agree with the unmetered SP engine,
//    including the raw storage words the algorithms wrote.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "ads/static_tree.h"
#include "ads/verify.h"
#include "chain/storage.h"
#include "crypto/digest.h"
#include "gem2/engine.h"
#include "mbtree/mbtree.h"
#include "seed_util.h"

namespace gem2 {
namespace {

Hash Vh(const std::string& v) { return crypto::ValueHash(v); }

// --- VO mutation fuzz ---------------------------------------------------------

class VoMutationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VoMutationFuzz, MutatedVosNeverVerify) {
  testutil::SeedReporter seed(GetParam());
  std::mt19937_64 rng(seed);

  // Random sorted entry set and a random query.
  ads::EntryList entries;
  Key k = 0;
  const size_t n = 20 + rng() % 200;
  for (size_t i = 0; i < n; ++i) {
    k += 1 + static_cast<Key>(rng() % 50);
    entries.push_back({k, Vh("v" + std::to_string(k))});
  }
  ads::StaticTree tree(entries, 2 + static_cast<int>(rng() % 4));
  const Key lb = static_cast<Key>(rng() % (k + 1));
  const Key ub = lb + static_cast<Key>(rng() % (k + 1));

  ads::EntryList result;
  ads::TreeVo vo = tree.RangeQuery(lb, ub, &result);
  std::vector<Object> objects;
  for (const ads::Entry& e : result) {
    objects.push_back({e.key, "v" + std::to_string(e.key)});
  }
  ASSERT_TRUE(ads::VerifyTreeVo(lb, ub, vo, tree.root_digest(), objects).ok);

  const Bytes wire = ads::SerializeTreeVo(vo);
  int parsed_mutants = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Bytes bad = wire;
    // 1-3 random byte mutations.
    const int edits = 1 + static_cast<int>(rng() % 3);
    for (int e = 0; e < edits; ++e) {
      bad[rng() % bad.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
    }
    if (bad == wire) continue;
    auto parsed = ads::ParseTreeVo(bad);
    if (!parsed.has_value()) continue;  // rejected at the codec
    ++parsed_mutants;
    auto outcome =
        ads::VerifyTreeVo(lb, ub, *parsed, tree.root_digest(), objects);
    EXPECT_FALSE(outcome.ok)
        << "mutated VO verified (seed " << seed.seed() << " trial " << trial << ")";
  }
  // The mutation space must actually exercise the verifier, not just the
  // parser.
  EXPECT_GT(parsed_mutants, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoMutationFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- MB-tree differential fuzz -------------------------------------------------

class MbTreeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MbTreeFuzz, AgreesWithMapModel) {
  testutil::SeedReporter seed(GetParam());
  std::mt19937_64 rng(seed);
  const int fanout = 3 + static_cast<int>(rng() % 6);
  mbtree::MbTree tree(fanout);
  std::map<Key, Hash> model;

  for (int op = 0; op < 1200; ++op) {
    const int dice = static_cast<int>(rng() % 10);
    if (dice < 6 || model.empty()) {
      // Insert a fresh key.
      Key key;
      do {
        key = static_cast<Key>(rng() % 10'000) - 5'000;
      } while (model.count(key) != 0);
      Hash vh = Vh("v" + std::to_string(op));
      tree.Insert(key, vh);
      model.emplace(key, vh);
    } else if (dice < 8) {
      // Update a random existing key.
      auto it = model.begin();
      std::advance(it, rng() % model.size());
      Hash vh = Vh("u" + std::to_string(op));
      ASSERT_TRUE(tree.Update(it->first, vh));
      it->second = vh;
    } else {
      // Bulk insert a small sorted run of fresh keys.
      ads::EntryList run;
      Key base = static_cast<Key>(rng() % 20'000) + 10'000;
      for (int i = 0; i < 8; ++i) {
        Key key = base + i * (1 + static_cast<Key>(rng() % 3)) + i;
        if (model.count(key) != 0 || (!run.empty() && run.back().key >= key)) {
          continue;
        }
        run.push_back({key, Vh("b" + std::to_string(op) + "." + std::to_string(i))});
      }
      tree.BulkInsert(run);
      for (const ads::Entry& e : run) model.emplace(e.key, e.value_hash);
    }

    if (op % 100 == 99) {
      tree.CheckInvariants();
      ads::EntryList all = tree.AllEntries();
      ASSERT_EQ(all.size(), model.size());
      auto mit = model.begin();
      for (const ads::Entry& e : all) {
        EXPECT_EQ(e.key, mit->first);
        EXPECT_EQ(e.value_hash, mit->second);
        ++mit;
      }
    }
  }
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbTreeFuzz, ::testing::Values(11, 22, 33, 44, 55));

// --- Metered GEM2 contract vs SP engine ----------------------------------------

class Gem2StorageFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Gem2StorageFuzz, MeteredStorageMatchesMirrors) {
  testutil::SeedReporter seed(GetParam());
  std::mt19937_64 rng(seed);
  gem2tree::Gem2Options options;
  options.m = 1 + rng() % 4;
  options.smax = options.m * (2 << (1 + rng() % 4));
  options.fanout = 4;

  gem2tree::Gem2Contract contract("ads", options);
  gem2tree::Gem2Engine mirror(options);

  std::vector<Key> keys;
  for (int op = 0; op < 500; ++op) {
    gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
    if (!keys.empty() && rng() % 4 == 0) {
      Key key = keys[rng() % keys.size()];
      Hash vh = Vh("u" + std::to_string(op));
      contract.Update(key, vh, meter);
      mirror.Update(key, vh);
    } else {
      Key key;
      do {
        key = static_cast<Key>(rng() % 1'000'000);
      } while (mirror.Contains(key));
      Hash vh = Vh("v" + std::to_string(key));
      contract.Insert(key, vh, meter);
      mirror.Insert(key, vh);
      keys.push_back(key);
    }
    ASSERT_EQ(contract.AuthenticatedDigests(), mirror.Digests()) << "op " << op;
  }
  contract.engine().CheckInvariants();
  mirror.CheckInvariants();

  // The contract's key_storage region must hold exactly the inserted keys in
  // insertion order (region 2, slots 1..count — see partition_chain.cpp).
  const chain::MeteredStorage& storage = contract.storage();
  for (size_t i = 0; i < keys.size(); ++i) {
    const Word w = storage.Peek({2, static_cast<uint64_t>(i + 1)});
    EXPECT_EQ(KeyFromWord(w), keys[i]) << "loc " << i + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gem2StorageFuzz, ::testing::Values(101, 202, 303));

// --- Cross-shape verification ----------------------------------------------------

TEST(CrossShape, DifferentFanoutsDifferentDigests) {
  // The canonical shape is part of the commitment: the same data under a
  // different fanout must not produce the same digest (otherwise SP and
  // contract could silently disagree about shapes).
  ads::EntryList entries;
  for (Key k = 1; k <= 64; ++k) entries.push_back({k, Vh("v")});
  EXPECT_NE(ads::CanonicalRootDigest(entries, 4),
            ads::CanonicalRootDigest(entries, 8));
}

TEST(CrossShape, MbTreeAndStaticTreeVosBothVerifyAgainstOwnRoots) {
  ads::EntryList entries;
  for (Key k = 1; k <= 200; ++k) entries.push_back({k * 3, Vh("v" + std::to_string(k))});

  ads::StaticTree st(entries, 4);
  mbtree::MbTree mb(4);
  for (const ads::Entry& e : entries) mb.Insert(e.key, e.value_hash);

  // Shapes (and digests) differ...
  EXPECT_NE(st.root_digest(), mb.root_digest());

  // ...but each answers the same query, verifiably, with identical results.
  ads::EntryList r1, r2;
  ads::TreeVo vo1 = st.RangeQuery(100, 400, &r1);
  ads::TreeVo vo2 = mb.RangeQuery(100, 400, &r2);
  EXPECT_EQ(r1, r2);
  std::vector<Object> objects;
  for (const ads::Entry& e : r1) {
    objects.push_back({e.key, "v" + std::to_string(e.key / 3)});
  }
  EXPECT_TRUE(ads::VerifyTreeVo(100, 400, vo1, st.root_digest(), objects).ok);
  EXPECT_TRUE(ads::VerifyTreeVo(100, 400, vo2, mb.root_digest(), objects).ok);
  // And VOs are not interchangeable across trees.
  EXPECT_FALSE(ads::VerifyTreeVo(100, 400, vo1, mb.root_digest(), objects).ok);
}

}  // namespace
}  // namespace gem2
