// GEM2-tree tests: Algorithms 1-4 (insert, merge, update, LocatePartition),
// the partition structure against the paper's worked example, contract/SP
// digest agreement, gas behaviour, and structural property sweeps.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "ads/verify.h"
#include "crypto/digest.h"
#include "gem2/engine.h"
#include "workload/workload.h"

namespace gem2::gem2tree {
namespace {

Hash Vh(Key k) { return crypto::ValueHash("value-" + std::to_string(k)); }

Gem2Options SmallOptions(uint64_t m = 2, uint64_t smax = 16) {
  Gem2Options o;
  o.m = m;
  o.smax = smax;
  o.fanout = 4;
  return o;
}

// --- The paper's worked example (Fig. 4 / Fig. 5, M = 2) ---------------------

TEST(Gem2PaperExample, PartitionLayoutAfter16Inserts) {
  // Fig. 4: 16 objects inserted; partitions P1=[1,8], P2=[9,12],
  // P3=[13,14]+[15,16].
  Gem2Engine engine(SmallOptions(2, 1024));
  const Key keys[] = {68, 32, 62, 17, 13, 82, 91, 35, 26, 18, 38, 43, 24, 4, 16, 75};
  for (Key k : keys) engine.Insert(k, Vh(k));
  engine.CheckInvariants();

  const PartitionChain& chain = engine.partition_chain();
  EXPECT_EQ(chain.max_index(), 3u);

  auto p1 = chain.tree_info(1, true);
  EXPECT_EQ(p1.start, 1u);
  EXPECT_EQ(p1.end, 8u);
  EXPECT_EQ(chain.tree_info(1, false).start, 0u);  // P1.Tr empty

  auto p2 = chain.tree_info(2, true);
  EXPECT_EQ(p2.start, 9u);
  EXPECT_EQ(p2.end, 12u);
  EXPECT_EQ(chain.tree_info(2, false).start, 0u);  // P2.Tr empty

  auto p3l = chain.tree_info(3, true);
  auto p3r = chain.tree_info(3, false);
  EXPECT_EQ(p3l.start, 13u);
  EXPECT_EQ(p3l.end, 14u);
  EXPECT_EQ(p3r.start, 15u);
  EXPECT_EQ(p3r.end, 16u);
}

TEST(Gem2PaperExample, MergeAfterInserting17thObject) {
  // Fig. 5: inserting key 10 merges P3 into P2's free right slot and opens a
  // new P3 = [17,18] + [19,20]; key 89 then joins P3.Tl.
  Gem2Engine engine(SmallOptions(2, 1024));
  const Key keys[] = {68, 32, 62, 17, 13, 82, 91, 35, 26, 18, 38, 43, 24, 4, 16, 75};
  for (Key k : keys) engine.Insert(k, Vh(k));
  engine.Insert(10, Vh(10));
  engine.CheckInvariants();

  const PartitionChain& chain = engine.partition_chain();
  EXPECT_EQ(chain.max_index(), 3u);
  auto p2r = chain.tree_info(2, false);
  EXPECT_EQ(p2r.start, 13u);
  EXPECT_EQ(p2r.end, 16u);
  auto p3l = chain.tree_info(3, true);
  EXPECT_EQ(p3l.start, 17u);
  EXPECT_EQ(p3l.end, 18u);
  EXPECT_EQ(p3l.occupied, 1u);
  EXPECT_EQ(chain.tree_info(3, false).start, 19u);

  engine.Insert(89, Vh(89));
  EXPECT_EQ(chain.tree_info(3, true).occupied, 2u);
  engine.CheckInvariants();
}

TEST(Gem2PaperExample, LocatePartitionMatchesPaperTrace) {
  // Section V-B: with the Fig. 4 layout, location 9 resolves to P2 via the
  // mod arithmetic (16 mod 4 = 0 -> P3 spans [13,16]; 12 mod 8 != 0 -> P2
  // spans [9,12]).
  Gem2Engine engine(SmallOptions(2, 1024));
  const Key keys[] = {68, 32, 62, 17, 13, 82, 91, 35, 26, 18, 38, 43, 24, 4, 16, 75};
  for (Key k : keys) engine.Insert(k, Vh(k));
  const PartitionChain& chain = engine.partition_chain();
  EXPECT_EQ(chain.LocatePartition(9, nullptr), 2);
  EXPECT_EQ(chain.LocatePartition(1, nullptr), 1);
  EXPECT_EQ(chain.LocatePartition(8, nullptr), 1);
  EXPECT_EQ(chain.LocatePartition(12, nullptr), 2);
  EXPECT_EQ(chain.LocatePartition(13, nullptr), 3);
  EXPECT_EQ(chain.LocatePartition(16, nullptr), 3);
}

// --- Merging and bulk-to-P0 ---------------------------------------------------

TEST(Gem2, BulkInsertsToP0WhenLargestPartitionFull) {
  // With M=2 and Smax=8, P1 reaching 8 objects must migrate into P0.
  Gem2Engine engine(SmallOptions(2, 8));
  for (Key k = 1; k <= 50; ++k) {
    engine.Insert(k * 3, Vh(k * 3));
    engine.CheckInvariants();
  }
  EXPECT_GT(engine.p0().size(), 0u);
  EXPECT_EQ(engine.p0().size() + engine.partition_chain().partition_size(), 50u);
}

TEST(Gem2, UpdatesReachP0Objects) {
  Gem2Engine engine(SmallOptions(2, 8));
  for (Key k = 1; k <= 60; ++k) engine.Insert(k, Vh(k));
  ASSERT_GT(engine.p0().size(), 0u);

  // Key 1 migrated to P0 long ago; update must route there (Algorithm 3/4).
  Hash p0_before = engine.p0().root_digest();
  engine.Update(1, crypto::ValueHash("new"));
  EXPECT_NE(engine.p0().root_digest(), p0_before);
  engine.CheckInvariants();
}

TEST(Gem2, UpdatesRebuildPartitionTrees) {
  Gem2Engine engine(SmallOptions(2, 1024));
  for (Key k = 1; k <= 10; ++k) engine.Insert(k, Vh(k));
  auto before = engine.Digests();
  engine.Update(10, crypto::ValueHash("new"));
  auto after = engine.Digests();
  EXPECT_NE(before, after);
  engine.CheckInvariants();
}

TEST(Gem2, RejectsDuplicateInsertAndUnknownUpdate) {
  Gem2Engine engine(SmallOptions());
  engine.Insert(5, Vh(5));
  EXPECT_THROW(engine.Insert(5, Vh(5)), std::invalid_argument);
  EXPECT_THROW(engine.Update(6, Vh(6)), std::invalid_argument);
}

// --- Property sweeps -----------------------------------------------------------

struct SweepParam {
  uint64_t m;
  uint64_t smax;
  size_t ops;
  uint64_t seed;
};

class Gem2Sweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Gem2Sweep, InvariantsAndQueriesUnderRandomOps) {
  const SweepParam p = GetParam();
  Gem2Options options = SmallOptions(p.m, p.smax);
  Gem2Engine engine(options);

  std::mt19937_64 rng(p.seed);
  std::map<Key, Hash> truth;
  std::vector<Key> keys;
  for (size_t i = 0; i < p.ops; ++i) {
    const bool update = !keys.empty() && rng() % 4 == 0;
    if (update) {
      Key k = keys[rng() % keys.size()];
      Hash vh = crypto::ValueHash("u" + std::to_string(i));
      engine.Update(k, vh);
      truth[k] = vh;
    } else {
      Key k;
      do {
        k = static_cast<Key>(rng() % 1'000'000);
      } while (truth.count(k) != 0);
      Hash vh = Vh(k);
      engine.Insert(k, vh);
      truth.emplace(k, vh);
      keys.push_back(k);
    }
  }
  engine.CheckInvariants();

  // Every tree answer must verify against its digest, and the union of
  // results must equal the brute-force filter.
  std::map<std::string, Hash> digest_of;
  for (const auto& d : engine.Digests()) digest_of[d.label] = d.digest;

  const Key lb = 100'000;
  const Key ub = 700'000;
  size_t found = 0;
  for (const ads::TreeAnswer& answer : engine.Query(lb, ub)) {
    ASSERT_TRUE(digest_of.count(answer.label)) << answer.label;
    std::vector<Object> objects;
    std::map<Key, Hash> seen;
    for (const ads::Entry& e : answer.result) {
      objects.push_back({e.key, ""});
      seen[e.key] = e.value_hash;
    }
    // VerifyTreeVo recomputes value hashes from raw objects; here we check
    // against the entry hashes directly by faking consistent payloads.
    // Instead, validate result-hash correctness against the truth map.
    for (const auto& [k, vh] : seen) {
      ASSERT_TRUE(truth.count(k));
      EXPECT_EQ(truth[k], vh);
      EXPECT_GE(k, lb);
      EXPECT_LE(k, ub);
    }
    found += answer.result.size();
  }
  size_t expect = 0;
  for (const auto& [k, vh] : truth) {
    if (k >= lb && k <= ub) ++expect;
  }
  EXPECT_EQ(found, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Gem2Sweep,
    ::testing::Values(SweepParam{1, 2, 120, 1}, SweepParam{2, 8, 300, 2},
                      SweepParam{2, 16, 500, 3}, SweepParam{4, 32, 800, 4},
                      SweepParam{8, 64, 1500, 5}, SweepParam{8, 2048, 1200, 6},
                      SweepParam{3, 24, 700, 7}),
    [](const auto& info) {
      return "M" + std::to_string(info.param.m) + "Smax" +
             std::to_string(info.param.smax) + "Ops" +
             std::to_string(info.param.ops);
    });

TEST(Gem2, LocatePartitionAgreesWithBruteForceAcrossGrowth) {
  Gem2Options options = SmallOptions(2, 32);
  Gem2Engine engine(options);
  const PartitionChain& chain = engine.partition_chain();
  for (Key k = 1; k <= 400; ++k) {
    engine.Insert(k * 7, Vh(k * 7));
    // Brute force: find the partition whose range holds each loc.
    for (Loc loc = 1; loc <= chain.total_inserted(); ++loc) {
      int expect = 0;
      for (uint64_t i = 1; i <= chain.max_index(); ++i) {
        for (bool left : {true, false}) {
          auto info = chain.tree_info(i, left);
          if (info.start != 0 && loc >= info.start && loc <= info.end) {
            expect = static_cast<int>(i);
          }
        }
      }
      ASSERT_EQ(chain.LocatePartition(loc, nullptr), expect)
          << "loc " << loc << " after " << k << " inserts";
    }
  }
}

// --- Contract vs SP and gas ----------------------------------------------------

TEST(Gem2, ContractAndMirrorStayIdentical) {
  Gem2Options options = SmallOptions(2, 16);
  Gem2Contract contract("ads", options);
  Gem2Engine mirror(options);

  std::mt19937_64 rng(11);
  std::vector<Key> keys;
  for (int i = 0; i < 300; ++i) {
    gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
    if (!keys.empty() && rng() % 3 == 0) {
      Key k = keys[rng() % keys.size()];
      Hash vh = crypto::ValueHash("u" + std::to_string(i));
      contract.Update(k, vh, meter);
      mirror.Update(k, vh);
    } else {
      Key k;
      do {
        k = static_cast<Key>(rng() % 100'000);
      } while (mirror.Contains(k));
      contract.Insert(k, Vh(k), meter);
      mirror.Insert(k, Vh(k));
      keys.push_back(k);
    }
    ASSERT_EQ(contract.AuthenticatedDigests(), mirror.Digests()) << "op " << i;
  }
}

TEST(Gem2Gas, InsertChargesStorageWrites) {
  Gem2Options options;
  options.m = 8;
  options.smax = 2048;
  Gem2Contract contract("ads", options);
  gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
  contract.Insert(42, Vh(42), meter);
  // Algorithm 1 lines 1-4: key_map, key_storage, value_storage are fresh
  // sstores; partition bootstrap adds the part_table entries.
  EXPECT_GE(meter.op_counts().sstore, 3u);
  EXPECT_GT(meter.op_counts().hash_calls, 0u);
}

TEST(Gem2Gas, UpdateInSmallPartitionIsCheap) {
  Gem2Options options;
  options.m = 8;
  options.smax = 2048;
  Gem2Contract contract("ads", options);
  for (Key k = 1; k <= 20; ++k) {
    gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
    contract.Insert(k, Vh(k), meter);
  }
  gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
  contract.Update(20, crypto::ValueHash("nv"), meter);
  // An update rebuilds one small SMB-tree: no sstores, bounded sloads.
  EXPECT_EQ(meter.op_counts().sstore, 0u);
  EXPECT_LT(meter.used(), 50'000u);
}

TEST(Gem2Gas, AmortizedInsertMuchCheaperThanMbTree) {
  Gem2Options options;
  options.m = 8;
  options.smax = 512;
  Gem2Contract gem2("gem2", options);
  mbtree::MbTree mb(4);

  uint64_t gem2_gas = 0;
  uint64_t mb_gas = 0;
  std::mt19937_64 rng(13);
  for (int i = 0; i < 3000; ++i) {
    Key k;
    do {
      k = static_cast<Key>(rng() % 10'000'000);
    } while (gem2.engine().Contains(k));
    gas::Meter m1(gas::kEthereumSchedule, 1ull << 60);
    gem2.Insert(k, Vh(k), m1);
    gem2_gas += m1.used();
    gas::Meter m2(gas::kEthereumSchedule, 1ull << 60);
    mb.Insert(k, Vh(k), &m2);
    mb_gas += m2.used();
  }
  EXPECT_LT(gem2_gas * 2, mb_gas);  // at least 2x cheaper at this small scale
}

}  // namespace
}  // namespace gem2::gem2tree
