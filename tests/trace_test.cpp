// Cross-role trace propagation tests: trace-context plumbing (NewTrace /
// TraceScope / ContinueTrace), the traced wire envelope (frames the
// authenticated image without touching its bytes), and the tentpole
// guarantee — a sharded scatter-gather query produces ONE parent span and
// exactly `slices` child spans sharing its trace id, with an identical span
// tree whether the scatter runs serially or on a thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/authenticated_db.h"
#include "core/range_store.h"
#include "core/wire.h"
#include "shard/sharded_db.h"
#include "telemetry/exporters.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace gem2::telemetry {
namespace {

using core::AdsKind;
using core::DbOptions;
using shard::ShardedDb;
using shard::ShardOptions;

class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "built with GEM2_TELEMETRY_DISABLED";
    Tracer::Global().ClearSinks();
    collector_ = std::make_shared<CollectorSink>();
    Tracer::Global().AddSink(collector_);
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override { Tracer::Global().ClearSinks(); }

  std::shared_ptr<CollectorSink> collector_;
};

// ---------------------------------------------------------------------------
// TraceContext primitives
// ---------------------------------------------------------------------------

TEST_F(TraceFixture, NewTraceIsValidAndUnique) {
  TraceContext a = NewTrace();
  TraceContext b = NewTrace();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.SameTraceAs(b));
  EXPECT_EQ(a.parent_span, 0u);
  EXPECT_FALSE(TraceContext{}.valid());
}

TEST_F(TraceFixture, TraceScopeInstallsAndRestores) {
  EXPECT_FALSE(CurrentTrace().valid());
  TraceContext outer = NewTrace();
  {
    TraceScope scope(outer);
    EXPECT_TRUE(CurrentTrace().SameTraceAs(outer));
    // ContinueTrace keeps an installed trace instead of minting a new one.
    EXPECT_TRUE(ContinueTrace().SameTraceAs(outer));
    TraceContext inner = NewTrace();
    {
      TraceScope nested(inner);
      EXPECT_TRUE(CurrentTrace().SameTraceAs(inner));
    }
    EXPECT_TRUE(CurrentTrace().SameTraceAs(outer));
  }
  EXPECT_FALSE(CurrentTrace().valid());
  // With nothing installed, ContinueTrace mints a fresh identity.
  EXPECT_TRUE(ContinueTrace().valid());
}

TEST_F(TraceFixture, TraceIdHexIs32LowercaseChars) {
  TraceContext t = NewTrace();
  std::string hex = t.TraceIdHex();
  ASSERT_EQ(hex.size(), 32u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

// ---------------------------------------------------------------------------
// Traced wire envelope
// ---------------------------------------------------------------------------

TEST_F(TraceFixture, TracedWireRoundTripsContextAndImage) {
  Bytes image = {0x02, 0xaa, 0xbb, 0xcc};  // arbitrary payload bytes
  TraceContext t = NewTrace();
  t.parent_span = 77;
  Bytes wire = core::WrapTracedWire(t, image);
  ASSERT_GT(wire.size(), image.size());
  core::TracedWire unwrapped = core::UnwrapTracedWire(wire);
  EXPECT_TRUE(unwrapped.trace.SameTraceAs(t));
  EXPECT_EQ(unwrapped.trace.parent_span, 77u);
  // The authenticated image is byte-identical: the envelope frames it, it
  // never rewrites it.
  EXPECT_EQ(unwrapped.image, image);
}

TEST_F(TraceFixture, BareImagePassesThroughUnframed) {
  Bytes image = {0x02, 0x01, 0x02, 0x03};
  core::TracedWire unwrapped = core::UnwrapTracedWire(image);
  EXPECT_FALSE(unwrapped.trace.valid());
  EXPECT_EQ(unwrapped.image, image);
  // An invalid context wraps to the bare image (no header at all), so
  // telemetry-off producers emit exactly the pre-envelope format.
  EXPECT_EQ(core::WrapTracedWire(TraceContext{}, image), image);
}

// ---------------------------------------------------------------------------
// Sharded scatter-gather span tree (the tentpole invariant)
// ---------------------------------------------------------------------------

std::unique_ptr<ShardedDb> BuildStore(size_t shards) {
  ShardOptions opts;
  opts.base.kind = AdsKind::kGem2;
  opts.base.gem2.m = 2;
  opts.base.gem2.smax = 16;
  for (size_t i = 1; i < shards; ++i) {
    opts.bounds.push_back(static_cast<Key>(i * 1000));
  }
  auto db = std::make_unique<ShardedDb>(std::move(opts));
  for (size_t s = 0; s < shards; ++s) {
    for (Key k = 0; k < 20; ++k) {
      db->Insert({static_cast<Key>(s * 1000 + k * 17), "v"});
    }
  }
  return db;
}

struct SpanTree {
  uint64_t parent_span_id = 0;
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  std::vector<SpanRecord> children;  // the scatter's per-slice sp.query spans
  // Shape only (names + edges), for serial-vs-parallel equality.
  std::multiset<std::pair<std::string, std::string>> edges;
};

SpanTree CollectQueryTree(CollectorSink& collector) {
  std::vector<SpanRecord> spans = collector.TakeSpans();
  SpanTree tree;
  const SpanRecord* parent = nullptr;
  for (const SpanRecord& s : spans) {
    if (s.name == "shard.query") {
      EXPECT_EQ(parent, nullptr) << "more than one scatter parent span";
      parent = &s;
    }
  }
  EXPECT_NE(parent, nullptr) << "no shard.query span recorded";
  if (parent == nullptr) return tree;
  tree.parent_span_id = parent->id;
  tree.trace_hi = parent->trace_hi;
  tree.trace_lo = parent->trace_lo;
  std::map<uint64_t, std::string> names;
  for (const SpanRecord& s : spans) names[s.id] = s.name;
  for (const SpanRecord& s : spans) {
    if (s.name == "sp.query" && s.parent_id == parent->id) {
      tree.children.push_back(s);
    }
    tree.edges.emplace(s.parent_id != 0 ? names[s.parent_id] : "", s.name);
  }
  return tree;
}

TEST_F(TraceFixture, ScatterGatherEmitsOneParentAndOneChildPerSlice) {
  constexpr size_t kShards = 3;
  auto db = BuildStore(kShards);
  collector_->TakeSpans();  // drop build-phase spans

  // The query overlaps all three shards, so the plan has three slices.
  core::QueryResponse response = db->Query(10, 2500);
  ASSERT_EQ(response.slices.size(), kShards);
  EXPECT_TRUE(response.trace.valid());

  SpanTree tree = CollectQueryTree(*collector_);
  ASSERT_EQ(tree.children.size(), kShards);
  EXPECT_NE(tree.trace_hi | tree.trace_lo, 0u);
  // The response hands the client the same identity that tagged the spans.
  EXPECT_EQ(response.trace.trace_hi, tree.trace_hi);
  EXPECT_EQ(response.trace.trace_lo, tree.trace_lo);
  EXPECT_EQ(response.trace.parent_span, tree.parent_span_id);
  for (const SpanRecord& child : tree.children) {
    EXPECT_EQ(child.trace_hi, tree.trace_hi);
    EXPECT_EQ(child.trace_lo, tree.trace_lo);
    EXPECT_EQ(child.parent_id, tree.parent_span_id);
  }
}

TEST_F(TraceFixture, SpanTreeIdenticalSerialVersusParallel) {
  constexpr size_t kShards = 4;
  auto db = BuildStore(kShards);
  collector_->TakeSpans();

  db->Query(10, 3500);
  SpanTree serial = CollectQueryTree(*collector_);

  common::ThreadPool pool(3);
  SpanTree parallel;
  {
    core::SpPoolScope scope(*db, &pool);
    collector_->TakeSpans();  // drop pool-install / rebuild spans
    db->Query(10, 3500);
    parallel = CollectQueryTree(*collector_);
  }

  ASSERT_EQ(serial.children.size(), kShards);
  ASSERT_EQ(parallel.children.size(), kShards);
  // Same tree shape — every span has the same-named parent — even though the
  // parallel children closed on pool threads with an empty span stack.
  EXPECT_EQ(serial.edges, parallel.edges);
  // Distinct queries get distinct trace ids.
  EXPECT_FALSE(serial.trace_hi == parallel.trace_hi &&
               serial.trace_lo == parallel.trace_lo);
}

TEST_F(TraceFixture, ClientVerifyJoinsTheQueryTrace) {
  auto db = BuildStore(2);
  collector_->TakeSpans();

  core::QueryResponse response = db->Query(10, 1500);
  core::VerifiedResult vr = db->VerifyFor(10, 1500, response);
  ASSERT_TRUE(vr.ok) << vr.error;

  std::vector<SpanRecord> spans = collector_->TakeSpans();
  const SpanRecord* verify = nullptr;
  for (const SpanRecord& s : spans) {
    if (s.name == "shard.verify") verify = &s;
  }
  ASSERT_NE(verify, nullptr);
  EXPECT_EQ(verify->trace_hi, response.trace.trace_hi);
  EXPECT_EQ(verify->trace_lo, response.trace.trace_lo);
}

TEST_F(TraceFixture, WireTransportCarriesTraceToTheClient) {
  auto db = BuildStore(2);
  collector_->TakeSpans();

  Bytes wire = db->QueryWire(10, 1500);
  core::TracedWire traced = core::UnwrapTracedWire(wire);
  EXPECT_TRUE(traced.trace.valid());

  core::VerifiedResult vr = db->VerifyWire(10, 1500, wire);
  ASSERT_TRUE(vr.ok) << vr.error;
  std::vector<SpanRecord> spans = collector_->TakeSpans();
  const SpanRecord* verify = nullptr;
  for (const SpanRecord& s : spans) {
    if (s.name == "shard.verify") verify = &s;
  }
  ASSERT_NE(verify, nullptr);
  // The envelope delivered the SP-side identity across the byte boundary.
  EXPECT_EQ(verify->trace_hi, traced.trace.trace_hi);
  EXPECT_EQ(verify->trace_lo, traced.trace.trace_lo);
}

}  // namespace
}  // namespace gem2::telemetry
