// Compressed wire v3 tests: canonical round-trips with identical verification
// outcomes, cross-version agreement with v2, the subtree-table dedup, the
// compression win, and exhaustive truncation/bit-flip rejection.
#include <gtest/gtest.h>

#include <memory>

#include "core/authenticated_db.h"
#include "core/wire.h"
#include "core/wire_v3.h"
#include "shard/sharded_db.h"

namespace gem2::core {
namespace {

std::unique_ptr<AuthenticatedDb> MakeDb(AdsKind kind) {
  DbOptions options;
  options.kind = kind;
  options.gem2.m = 2;
  options.gem2.smax = 16;
  options.wire_version = WireVersion::kV3;
  if (kind == AdsKind::kGem2Star) options.split_points = {100, 200};
  auto db = std::make_unique<AuthenticatedDb>(options);
  // Values drawn from a three-string alphabet: repeated value hashes across
  // boundary entries are what populate the v3 subtree-hash table.
  for (Key k = 1; k <= 60; ++k) {
    db->Insert({k * 5, "value-" + std::to_string(k % 3)});
  }
  return db;
}

class WireV3Test : public ::testing::TestWithParam<AdsKind> {};

INSTANTIATE_TEST_SUITE_P(AllKinds, WireV3Test,
                         ::testing::Values(AdsKind::kMbTree, AdsKind::kSmbTree,
                                           AdsKind::kLsm, AdsKind::kGem2,
                                           AdsKind::kGem2Star),
                         [](const auto& info) {
                           switch (info.param) {
                             case AdsKind::kMbTree:
                               return "MbTree";
                             case AdsKind::kSmbTree:
                               return "SmbTree";
                             case AdsKind::kLsm:
                               return "Lsm";
                             case AdsKind::kGem2:
                               return "Gem2";
                             case AdsKind::kGem2Star:
                               return "Gem2Star";
                           }
                           return "Unknown";
                         });

TEST_P(WireV3Test, RoundTripsCanonicallyAndVerifies) {
  auto db = MakeDb(GetParam());
  QueryResponse response = db->Query(40, 220);
  Bytes v3 = wirev3::Serialize(response);
  ASSERT_GE(v3.size(), 3u);
  EXPECT_EQ(v3[0], wirev3::kVersion);
  EXPECT_EQ(v3[1], 0);  // kind: single

  auto parsed = wirev3::Parse(v3);
  ASSERT_TRUE(parsed.has_value());
  // Canonical: the accepted image re-serializes to the identical bytes.
  EXPECT_EQ(wirev3::Serialize(*parsed), v3);
  // Cross-version: a response decoded from v3 carries exactly the content of
  // the original, so its canonical v2 serialization matches the original's.
  EXPECT_EQ(SerializeResponse(*parsed, WireVersion::kV2),
            SerializeResponse(response, WireVersion::kV2));

  VerifiedResult direct = db->Verify(response);
  VerifiedResult via_wire = db->VerifyFor(40, 220, *parsed);
  ASSERT_TRUE(direct.ok) << direct.error;
  ASSERT_TRUE(via_wire.ok) << via_wire.error;
  EXPECT_EQ(via_wire.objects, direct.objects);
}

TEST_P(WireV3Test, EmptyResultSetRoundTrips) {
  auto db = MakeDb(GetParam());
  QueryResponse response = db->Query(600, 900);  // past every key
  Bytes v3 = SerializeResponse(response, WireVersion::kV3);
  auto parsed = ParseResponse(v3);  // version dispatch off the leading byte
  ASSERT_TRUE(parsed.has_value());
  VerifiedResult vr = db->VerifyFor(600, 900, *parsed);
  ASSERT_TRUE(vr.ok) << vr.error;
  EXPECT_TRUE(vr.objects.empty());
  EXPECT_EQ(SerializeResponse(*parsed, WireVersion::kV3), v3);
}

TEST_P(WireV3Test, CompressesAgainstV2) {
  auto db = MakeDb(GetParam());
  for (auto [lb, ub] : std::vector<std::pair<Key, Key>>{{40, 220}, {0, 300}}) {
    QueryResponse response = db->Query(lb, ub);
    const size_t v2 = SerializeResponse(response, WireVersion::kV2).size();
    const size_t v3 = SerializeResponse(response, WireVersion::kV3).size();
    // The acceptance floor is a 25% reduction; in practice v3 lands nearer
    // 60% (delta keys + varints + the hash table).
    EXPECT_LE(v3 * 4, v2 * 3) << "[" << lb << ", " << ub << "]";
  }
}

TEST_P(WireV3Test, WireQueriesShipV3AndVerify) {
  // DbOptions::wire_version = kV3 switches the SP's QueryWire output; the
  // client parses it off the version byte with no configuration at all.
  auto db = MakeDb(GetParam());
  Bytes wire = db->QueryWire(40, 220);
  VerifiedResult vr = db->VerifyWire(40, 220, wire);
  ASSERT_TRUE(vr.ok) << vr.error;
  VerifiedResult direct = db->Verify(db->Query(40, 220));
  EXPECT_EQ(vr.objects, direct.objects);
}

TEST(WireV3, VarintsAreCanonical) {
  for (uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
        uint64_t{16383}, uint64_t{16384}, uint64_t{0xffffffff}, ~uint64_t{0}}) {
    Bytes b;
    wirev3::AppendVarint(&b, v);
    size_t pos = 0;
    auto back = wirev3::ReadVarint(b, &pos);
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, b.size());
  }
  size_t pos = 0;
  // Non-minimal: {0x80, 0x00} is a two-byte zero.
  Bytes overlong{0x80, 0x00};
  EXPECT_FALSE(wirev3::ReadVarint(overlong, &pos).has_value());
  // Truncated continuation.
  pos = 0;
  Bytes truncated{0x80};
  EXPECT_FALSE(wirev3::ReadVarint(truncated, &pos).has_value());
  // 65-bit overflow: the 10th byte may only be 0x01.
  pos = 0;
  Bytes overflow(9, 0xff);
  overflow.push_back(0x02);
  EXPECT_FALSE(wirev3::ReadVarint(overflow, &pos).has_value());
}

TEST(WireV3, ZigzagRoundTripsTheExtremes) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{1} << 62,
                    kKeyMin, kKeyMax}) {
    EXPECT_EQ(wirev3::ZigzagDecode(wirev3::ZigzagEncode(v)), v);
  }
  EXPECT_EQ(wirev3::ZigzagEncode(0), 0u);
  EXPECT_EQ(wirev3::ZigzagEncode(-1), 1u);
  EXPECT_EQ(wirev3::ZigzagEncode(1), 2u);
}

TEST(WireV3, TableDedupsRepeatedHashesAndStaysStrict) {
  // GEM2* over the three-string value alphabet: this range's VO carries
  // several repeated boundary value hashes (empirically, three table slots).
  auto db = MakeDb(AdsKind::kGem2Star);
  QueryResponse response = db->Query(40, 220);
  Bytes v3 = wirev3::Serialize(response);
  auto table = wirev3::LocateTable(v3);
  ASSERT_TRUE(table.has_value());
  ASSERT_GE(table->count, 2u);
  ASSERT_TRUE(wirev3::Parse(v3).has_value());

  // Duplicate table entries are non-canonical: copying slot 0 over slot 1
  // must kill the parse.
  Bytes dup = v3;
  std::copy(dup.begin() + static_cast<long>(table->offset),
            dup.begin() + static_cast<long>(table->offset) + 32,
            dup.begin() + static_cast<long>(table->offset) + 32);
  EXPECT_FALSE(wirev3::Parse(dup).has_value());

  // An unreferenced table entry is non-canonical too: growing the table by a
  // fresh hash (count patched) leaves a slot nothing points at.
  Bytes padded(v3.begin(), v3.begin() + 2);
  wirev3::AppendVarint(&padded, table->count + 1);
  padded.insert(padded.end(), v3.begin() + static_cast<long>(table->offset),
                v3.begin() + static_cast<long>(table->offset + 32 * table->count));
  Bytes fresh(32, 0xa5);  // not a hash this response contains
  padded.insert(padded.end(), fresh.begin(), fresh.end());
  padded.insert(padded.end(),
                v3.begin() + static_cast<long>(table->offset + 32 * table->count),
                v3.end());
  EXPECT_FALSE(wirev3::Parse(padded).has_value());
}

TEST(WireV3, TruncationAtEveryOffsetIsRejected) {
  auto db = MakeDb(AdsKind::kGem2);
  Bytes v3 = wirev3::Serialize(db->Query(150, 150));
  ASSERT_TRUE(wirev3::Parse(v3).has_value());
  for (size_t cut = 0; cut < v3.size(); ++cut) {
    Bytes truncated(v3.begin(), v3.begin() + static_cast<long>(cut));
    EXPECT_FALSE(ParseResponse(truncated).has_value()) << "cut at " << cut;
  }
  Bytes padded = v3;
  padded.push_back(0);
  EXPECT_FALSE(ParseResponse(padded).has_value());
}

TEST(WireV3, BitFlipAtEveryOffsetNeverAcceptsASemanticChange) {
  auto db = MakeDb(AdsKind::kGem2Star);
  QueryResponse response = db->Query(150, 150);
  ASSERT_TRUE(db->VerifyFor(150, 150, response).ok);
  Bytes v3 = wirev3::Serialize(response);

  int parsed_count = 0;
  for (size_t offset = 0; offset < v3.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes bad = v3;
      bad[offset] ^= static_cast<uint8_t>(1u << bit);
      auto parsed = ParseResponse(bad);
      if (!parsed.has_value()) continue;
      ++parsed_count;
      // Anything that still parses must fail client verification — unless
      // the canonical re-serialization proves nothing semantic changed,
      // which for a strictly canonical codec means the original image.
      VerifiedResult vr = db->VerifyFor(150, 150, *parsed);
      if (vr.ok) {
        EXPECT_EQ(SerializeResponse(*parsed, WireVersion::kV3), v3)
            << "offset " << offset << " bit " << bit;
      }
    }
  }
  // The flips that survive the codec are exactly the ones verification is
  // for; the sweep must have exercised that second line of defense.
  EXPECT_GT(parsed_count, 0);
}

TEST(WireV3, CompositeDedupsAcrossSlicesAndRoundTrips) {
  // Two slices of one MB-tree whose values split low/high around the middle:
  // each slice's boundary entries repeat a value hash, so the *global* table
  // dedups hashes across slice boundaries — the composite-specific win.
  DbOptions options;
  options.kind = AdsKind::kMbTree;
  auto db = std::make_unique<AuthenticatedDb>(options);
  for (Key k = 1; k <= 60; ++k) {
    db->Insert({k * 5, k <= 30 ? std::string("low") : std::string("high")});
  }
  QueryResponse composite;
  composite.lb = 40;
  composite.ub = 280;
  composite.slices.push_back({0, db->Query(40, 100)});
  composite.slices.push_back({1, db->Query(200, 280)});

  Bytes v3 = wirev3::Serialize(composite);
  ASSERT_GE(v3.size(), 3u);
  EXPECT_EQ(v3[0], wirev3::kVersion);
  EXPECT_EQ(v3[1], 1);  // kind: composite
  auto table = wirev3::LocateTable(v3);
  ASSERT_TRUE(table.has_value());
  EXPECT_GE(table->count, 1u);

  auto parsed = wirev3::Parse(v3);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(wirev3::Serialize(*parsed), v3);
  EXPECT_EQ(SerializeResponse(*parsed, WireVersion::kV2),
            SerializeResponse(composite, WireVersion::kV2));

  const size_t v2_size = SerializeResponse(composite, WireVersion::kV2).size();
  EXPECT_LE(v3.size() * 4, v2_size * 3);

  for (size_t cut : {v3.size() - 1, v3.size() / 2, v3.size() / 4, size_t{3}}) {
    Bytes truncated(v3.begin(), v3.begin() + static_cast<long>(cut));
    EXPECT_FALSE(ParseResponse(truncated).has_value()) << "cut at " << cut;
  }
}

TEST(WireV3, ShardedScatterGatherShipsV3EndToEnd) {
  shard::ShardOptions options;
  options.bounds = {150};
  options.base.kind = AdsKind::kGem2;
  options.base.gem2.m = 2;
  options.base.gem2.smax = 16;
  options.base.wire_version = WireVersion::kV3;
  shard::ShardedDb db(options);
  for (Key k = 1; k <= 60; ++k) {
    db.Insert({k * 5, "value-" + std::to_string(k % 3)});
  }
  EXPECT_EQ(db.wire_version(), WireVersion::kV3);

  // The seam-crossing composite serializes as one v3 image with a shared
  // table and verifies through the ordinary wire path.
  QueryResponse response = db.Query(40, 220);
  ASSERT_EQ(response.slices.size(), 2u);
  Bytes v3 = SerializeResponse(response, WireVersion::kV3);
  EXPECT_EQ(v3[0], wirev3::kVersion);
  EXPECT_LE(v3.size() * 4,
            SerializeResponse(response, WireVersion::kV2).size() * 3);

  VerifiedResult vr = db.VerifyWire(40, 220, db.QueryWire(40, 220));
  ASSERT_TRUE(vr.ok) << vr.error;
  VerifiedResult direct = db.VerifyFor(40, 220, response);
  ASSERT_TRUE(direct.ok) << direct.error;
  EXPECT_EQ(vr.objects, direct.objects);
}

TEST(WireV3, UnknownKindAndVersionBytesAreRejected) {
  auto db = MakeDb(AdsKind::kGem2);
  Bytes v3 = wirev3::Serialize(db->Query(40, 220));
  for (uint8_t k : {2, 7, 255}) {
    Bytes other = v3;
    other[1] = k;
    EXPECT_FALSE(ParseResponse(other).has_value()) << "kind " << int(k);
  }
  // A v3 body relabeled with any other version byte dies in that parser.
  for (uint8_t v : {0, 1, 2, 4, 255}) {
    Bytes other = v3;
    other[0] = v;
    EXPECT_FALSE(ParseResponse(other).has_value()) << "version " << int(v);
  }
  // VerifyWire surfaces it as a failed result, never an exception.
  Bytes relabeled = v3;
  relabeled[0] = 2;
  VerifiedResult vr = db->VerifyWire(40, 220, relabeled);
  EXPECT_FALSE(vr.ok);
  EXPECT_EQ(vr.error, "malformed wire image");
}

}  // namespace
}  // namespace gem2::core
