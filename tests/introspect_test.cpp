// Introspection-surface tests: the JSONL audit log captures every injected
// forgery's rejection with trace id + operator + seed + reason, the
// Prometheus text exposition renders the full registry (summary quantiles
// included), provider facts flow through Introspection, and the SIGUSR1
// handler produces an on-demand dump.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/adversary.h"
#include "shard/sharded_db.h"
#include "telemetry/event_log.h"
#include "telemetry/exporters.h"
#include "telemetry/introspect.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace gem2::telemetry {
namespace {

class IntrospectFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "built with GEM2_TELEMETRY_DISABLED";
    Tracer::Global().ClearSinks();
    Tracer::Global().AddSink(std::make_shared<NullSink>());
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override {
    EventLog::Global().Close();
    Tracer::Global().ClearSinks();
  }

  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "gem2_" + name + "_" +
           std::to_string(::getpid());
  }
};

std::unique_ptr<shard::ShardedDb> BuildStore() {
  shard::ShardOptions opts;
  opts.base.kind = core::AdsKind::kGem2;
  opts.base.gem2.m = 2;
  opts.base.gem2.smax = 16;
  opts.bounds = {1000, 2000};
  auto db = std::make_unique<shard::ShardedDb>(std::move(opts));
  for (Key k = 0; k < 3000; k += 37) db->Insert({k, "v"});
  return db;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// ---------------------------------------------------------------------------
// JSONL audit log
// ---------------------------------------------------------------------------

TEST_F(IntrospectFixture, FaultSweepAuditsEveryRejectionWithAttribution) {
  const std::string path = TempPath("audit.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(EventLog::Global().Open(path));

  auto db = BuildStore();
  fault::AdversaryOptions adversary;
  adversary.seed = 11;
  adversary.mutations = 60;
  adversary.domain_hi = 3000;
  fault::AdversaryReport report = fault::RunAdversarialSweep(*db, adversary);
  ASSERT_TRUE(report.AllRejected());
  const uint64_t written = EventLog::Global().lines_written();
  EventLog::Global().Close();

  // One audit line per rejection — parse rejects from the sweep itself,
  // verify rejects from the client path's outermost observation.
  const std::vector<std::string> lines = ReadLines(path);
  const size_t rejections = static_cast<size_t>(report.rejected_parse) +
                            static_cast<size_t>(report.rejected_verify);
  EXPECT_GT(report.rejected_parse, 0);
  EXPECT_GT(report.rejected_verify, 0);
  ASSERT_EQ(lines.size(), rejections);
  EXPECT_EQ(written, rejections);

  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonValid(line)) << line;
    EXPECT_NE(line.find("\"type\":\"verify.reject\""), std::string::npos) << line;
    // Full attribution: which query (trace), which forgery (op + seed +
    // round), why it was thrown out (reason).
    EXPECT_NE(line.find("\"trace\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"op\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"seed\":\"11\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"round\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"reason\":\""), std::string::npos) << line;
  }
}

TEST_F(IntrospectFixture, ScopedEventFieldsNestAndPop) {
  const std::string path = TempPath("fields.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(EventLog::Global().Open(path));
  {
    ScopedEventFields outer({{"layer", "outer"}});
    {
      ScopedEventFields inner({{"detail", "inner"}});
      EventLog::Global().Emit(Event("test.nested"));
    }
    EventLog::Global().Emit(Event("test.flat"));
  }
  EventLog::Global().Emit(Event("test.bare"));
  EventLog::Global().Close();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"layer\":\"outer\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"detail\":\"inner\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"layer\":\"outer\""), std::string::npos);
  EXPECT_EQ(lines[1].find("\"detail\""), std::string::npos);
  EXPECT_EQ(lines[2].find("\"layer\""), std::string::npos);
}

TEST_F(IntrospectFixture, UnopenedLogDropsEventsCheaply) {
  EventLog::Global().Close();
  ASSERT_FALSE(EventLog::Global().enabled());
  const uint64_t before = EventLog::Global().lines_written();
  EventLog::Global().Emit(Event("test.dropped").Num("n", 1));
  EXPECT_EQ(EventLog::Global().lines_written(), before);
}

// ---------------------------------------------------------------------------
// Prometheus exposition + providers
// ---------------------------------------------------------------------------

TEST_F(IntrospectFixture, PrometheusNameMapping) {
  EXPECT_EQ(PrometheusName("query.count"), "gem2_query_count");
  EXPECT_EQ(PrometheusName("sp_engine.query_ns"), "gem2_sp_engine_query_ns");
  EXPECT_EQ(PrometheusName("shard.slice_ns.0"), "gem2_shard_slice_ns_0");
  EXPECT_EQ(PrometheusName("Weird Name-#1!"), "gem2_weird_name_1");
}

TEST_F(IntrospectFixture, ExpositionRendersCountersGaugesHistogramsAndFacts) {
  auto& registry = MetricsRegistry::Global();
  registry.counter("test.hits").Add(3);
  registry.gauge("test.depth").Set(-4);
  auto& h = registry.histogram("test.lat_ns");
  for (uint64_t v = 1; v <= 100; ++v) h.Observe(v);

  const std::string out =
      PrometheusExposition(registry.Snapshot(), {{"fake.facts", 9}});
  EXPECT_NE(out.find("# TYPE gem2_test_hits counter\n"), std::string::npos);
  EXPECT_NE(out.find("gem2_test_hits_total 3\n"), std::string::npos);
  EXPECT_NE(out.find("gem2_test_depth -4\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE gem2_test_lat_ns summary\n"), std::string::npos);
  EXPECT_NE(out.find("gem2_test_lat_ns{quantile=\"0.5\"} "), std::string::npos);
  EXPECT_NE(out.find("gem2_test_lat_ns{quantile=\"0.999\"} "), std::string::npos);
  EXPECT_NE(out.find("gem2_test_lat_ns_count 100\n"), std::string::npos);
  EXPECT_NE(out.find("gem2_test_lat_ns_sum 5050\n"), std::string::npos);
  EXPECT_NE(out.find("gem2_fake_facts 9\n"), std::string::npos);
}

TEST_F(IntrospectFixture, ProvidersRegisterReplaceAndUnregister) {
  auto& intro = Introspection::Global();
  intro.RegisterProvider("testprov", [] {
    return ProviderFacts{{"alpha", 1}, {"beta", 2}};
  });
  ProviderFacts facts = intro.Collect();
  auto find = [&](const std::string& key) -> const uint64_t* {
    for (const auto& [k, v] : facts) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(find("testprov.alpha"), nullptr);
  EXPECT_EQ(*find("testprov.alpha"), 1u);
  EXPECT_EQ(*find("testprov.beta"), 2u);

  // Same-name registration replaces (idempotent re-registration).
  intro.RegisterProvider("testprov", [] {
    return ProviderFacts{{"alpha", 42}};
  });
  facts = intro.Collect();
  ASSERT_NE(find("testprov.alpha"), nullptr);
  EXPECT_EQ(*find("testprov.alpha"), 42u);
  EXPECT_EQ(find("testprov.beta"), nullptr);

  intro.UnregisterProvider("testprov");
  facts = intro.Collect();
  EXPECT_EQ(find("testprov.alpha"), nullptr);
}

TEST_F(IntrospectFixture, IntrospectionJsonIsValidAndComplete) {
  auto& registry = MetricsRegistry::Global();
  registry.counter("test.json.hits").Add(7);
  registry.histogram("test.json.lat").Observe(5);
  Introspection::Global().RegisterProvider(
      "jsonprov", [] { return ProviderFacts{{"x", 3}}; });

  const std::string json = IntrospectionJson();
  Introspection::Global().UnregisterProvider("jsonprov");
  EXPECT_TRUE(JsonValid(json)) << json;
  EXPECT_NE(json.find("\"test.json.hits\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"jsonprov.x\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p999\":"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// SIGUSR1 on-demand dump
// ---------------------------------------------------------------------------

TEST_F(IntrospectFixture, SigUsr1WritesExpositionToConfiguredPath) {
  const std::string path = TempPath("sigusr1.prom");
  std::remove(path.c_str());
  ASSERT_EQ(::setenv("GEM2_INTROSPECT_PATH", path.c_str(), 1), 0);
  MetricsRegistry::Global().counter("test.sigusr1.marker").Add(1);

  InstallSigUsr1Dump();
  const uint64_t before = SigUsr1DumpCount();
  ASSERT_EQ(std::raise(SIGUSR1), 0);

  // The async-signal-safe handler only sets a flag; a watcher thread writes
  // the dump. Await it (20ms poll period, generous ceiling).
  for (int i = 0; i < 250 && SigUsr1DumpCount() == before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GT(SigUsr1DumpCount(), before) << "watcher never serviced the signal";
  ::unsetenv("GEM2_INTROSPECT_PATH");

  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("# gem2 introspection dump pid="),
            std::string::npos);
  EXPECT_NE(content.str().find("gem2_test_sigusr1_marker_total 1"),
            std::string::npos);
}

}  // namespace
}  // namespace gem2::telemetry
