// Gas meter and fee schedule tests (paper Table I semantics).
#include <gtest/gtest.h>

#include "gas/meter.h"

namespace gem2::gas {
namespace {

TEST(Schedule, TableOneConstants) {
  EXPECT_EQ(kEthereumSchedule.sload, 200u);
  EXPECT_EQ(kEthereumSchedule.sstore, 20'000u);
  EXPECT_EQ(kEthereumSchedule.supdate, 5'000u);
  EXPECT_EQ(kEthereumSchedule.mem, 3u);
  EXPECT_EQ(kEthereumSchedule.hash_base, 30u);
  EXPECT_EQ(kEthereumSchedule.hash_word, 6u);
  EXPECT_EQ(kDefaultGasLimit, 8'000'000u);
}

TEST(Schedule, HashCostRoundsUpToWords) {
  EXPECT_EQ(kEthereumSchedule.HashCost(0), 30u);
  EXPECT_EQ(kEthereumSchedule.HashCost(1), 36u);
  EXPECT_EQ(kEthereumSchedule.HashCost(32), 36u);
  EXPECT_EQ(kEthereumSchedule.HashCost(33), 42u);
  EXPECT_EQ(kEthereumSchedule.HashCost(64), 42u);
}

TEST(Meter, AccumulatesPerCategory) {
  Meter meter;
  meter.ChargeSload(3);
  meter.ChargeSstore(1);
  meter.ChargeSupdate(2);
  meter.ChargeMem(10);
  meter.ChargeHash(40);

  const GasBreakdown& b = meter.breakdown();
  EXPECT_EQ(b.sload, 600u);
  EXPECT_EQ(b.sstore, 20'000u);
  EXPECT_EQ(b.supdate, 10'000u);
  EXPECT_EQ(b.mem, 30u);
  EXPECT_EQ(b.hash, 42u);
  EXPECT_EQ(meter.used(), b.total());

  const OpCounts& ops = meter.op_counts();
  EXPECT_EQ(ops.sload, 3u);
  EXPECT_EQ(ops.sstore, 1u);
  EXPECT_EQ(ops.supdate, 2u);
  EXPECT_EQ(ops.mem_words, 10u);
  EXPECT_EQ(ops.hash_calls, 1u);
  EXPECT_EQ(ops.hash_bytes, 40u);
}

TEST(Meter, ThrowsPastLimit) {
  Meter meter(kEthereumSchedule, 25'000);
  meter.ChargeSstore(1);  // 20,000 — fine
  EXPECT_THROW(meter.ChargeSstore(1), OutOfGasError);
  try {
    Meter m2(kEthereumSchedule, 100);
    m2.ChargeSload(1);
    FAIL() << "expected OutOfGasError";
  } catch (const OutOfGasError& e) {
    EXPECT_EQ(e.used(), 200u);
    EXPECT_EQ(e.limit(), 100u);
  }
}

TEST(Meter, OutOfGasCarriesPartialBreakdown) {
  Meter meter(kEthereumSchedule, 45'000);
  meter.ChargeSstore(1);   // 20,000
  meter.ChargeSupdate(1);  // 5,000
  meter.ChargeSload(2);    // 400
  try {
    meter.ChargeSstore(2);  // 40,000 -> 65,400 > limit
    FAIL() << "expected OutOfGasError";
  } catch (const OutOfGasError& e) {
    // The failure carries the full accounting at the moment of abort,
    // including the charge that crossed the limit.
    EXPECT_EQ(e.breakdown().sstore, 60'000u);
    EXPECT_EQ(e.breakdown().supdate, 5'000u);
    EXPECT_EQ(e.breakdown().sload, 400u);
    EXPECT_EQ(e.breakdown().total(), e.used());
    EXPECT_EQ(e.op_counts().sstore, 3u);
    EXPECT_EQ(e.op_counts().supdate, 1u);
    EXPECT_EQ(e.op_counts().sload, 2u);
  }
}

TEST(Meter, ResetClearsEverything) {
  Meter meter;
  meter.ChargeSstore(2);
  meter.Reset();
  EXPECT_EQ(meter.used(), 0u);
  EXPECT_EQ(meter.op_counts().sstore, 0u);
}

TEST(Meter, SortCostIsNLogN) {
  Meter meter;
  meter.ChargeSortCost(1);
  EXPECT_EQ(meter.used(), 0u);  // nothing to sort

  meter.Reset();
  meter.ChargeSortCost(8);  // 8 * log2(8) = 24 memory words
  EXPECT_EQ(meter.op_counts().mem_words, 24u);

  meter.Reset();
  meter.ChargeSortCost(1024);  // 1024 * 10
  EXPECT_EQ(meter.op_counts().mem_words, 10'240u);

  // Non-power-of-two rounds the log up.
  meter.Reset();
  meter.ChargeSortCost(1025);
  EXPECT_EQ(meter.op_counts().mem_words, 1025u * 11u);
}

TEST(Meter, BreakdownAddition) {
  GasBreakdown a;
  a.sload = 100;
  a.hash = 30;
  GasBreakdown b;
  b.sload = 50;
  b.sstore = 20'000;
  a += b;
  EXPECT_EQ(a.sload, 150u);
  EXPECT_EQ(a.sstore, 20'000u);
  EXPECT_EQ(a.total(), 150u + 20'000u + 30u);
}

TEST(Meter, CustomScheduleForAblations) {
  Schedule cheap_writes;
  cheap_writes.sstore = 100;
  cheap_writes.supdate = 50;
  Meter meter(cheap_writes, kDefaultGasLimit);
  meter.ChargeSstore(1);
  meter.ChargeSupdate(1);
  EXPECT_EQ(meter.used(), 150u);
}

}  // namespace
}  // namespace gem2::gas
