// Core façade tests: AuthenticatedDb lifecycle, the response protocol,
// VerifyResponse's cross-tree completeness logic (including GEM2* region
// rules), and failure handling.
#include <gtest/gtest.h>

#include "core/authenticated_db.h"
#include "crypto/digest.h"
#include "workload/workload.h"

namespace gem2::core {
namespace {

DbOptions SmallGem2() {
  DbOptions options;
  options.kind = AdsKind::kGem2;
  options.gem2.m = 2;
  options.gem2.smax = 16;
  return options;
}

TEST(AuthenticatedDb, AdsKindNames) {
  EXPECT_EQ(AdsKindName(AdsKind::kMbTree), "MB-tree");
  EXPECT_EQ(AdsKindName(AdsKind::kSmbTree), "SMB-tree");
  EXPECT_EQ(AdsKindName(AdsKind::kLsm), "LSM-tree");
  EXPECT_EQ(AdsKindName(AdsKind::kGem2), "GEM2-tree");
  EXPECT_EQ(AdsKindName(AdsKind::kGem2Star), "GEM2*-tree");
}

TEST(AuthenticatedDb, EmptyDatabaseQueriesVerify) {
  AuthenticatedDb db(SmallGem2());
  VerifiedResult vr = db.AuthenticatedRange(0, 100);
  EXPECT_TRUE(vr.ok) << vr.error;
  EXPECT_TRUE(vr.objects.empty());
}

TEST(AuthenticatedDb, SingleObjectRoundTrip) {
  AuthenticatedDb db(SmallGem2());
  ASSERT_TRUE(db.Insert({42, "answer"}).ok);
  VerifiedResult vr = db.AuthenticatedRange(42, 42);
  ASSERT_TRUE(vr.ok) << vr.error;
  ASSERT_EQ(vr.objects.size(), 1u);
  EXPECT_EQ(vr.objects[0].value, "answer");
  // Outside the key: empty but verified.
  vr = db.AuthenticatedRange(43, 100);
  EXPECT_TRUE(vr.ok);
  EXPECT_TRUE(vr.objects.empty());
}

TEST(AuthenticatedDb, UpdateVisibleAndVerified) {
  AuthenticatedDb db(SmallGem2());
  db.Insert({1, "v1"});
  db.Insert({2, "v2"});
  db.Update({1, "v1b"});
  VerifiedResult vr = db.AuthenticatedRange(0, 10);
  ASSERT_TRUE(vr.ok) << vr.error;
  ASSERT_EQ(vr.objects.size(), 2u);
  EXPECT_EQ(vr.objects[0].value, "v1b");
}

TEST(AuthenticatedDb, PoisonedAfterOutOfGas) {
  DbOptions options;
  options.kind = AdsKind::kLsm;
  options.env.gas_limit = gas::kDefaultGasLimit;
  AuthenticatedDb db(options);
  bool failed = false;
  for (Key k = 1; k <= 2000 && !failed; ++k) {
    failed = !db.Insert({k, "v"}).ok;
  }
  ASSERT_TRUE(failed);
  EXPECT_TRUE(db.poisoned());
  EXPECT_THROW(db.Insert({99'999, "v"}), std::logic_error);
}

TEST(VerifyResponse, RejectsInvalidChain) {
  AuthenticatedDb db(SmallGem2());
  db.Insert({1, "v"});
  QueryResponse r = db.Query(0, 10);
  chain::AuthenticatedState state = db.environment().ReadAuthenticatedState("ads");
  VerifiedResult vr = VerifyResponse(state, /*chain_valid=*/false, AdsKind::kGem2, r);
  EXPECT_FALSE(vr.ok);
}

TEST(VerifyResponse, RejectsTamperedStateDigest) {
  AuthenticatedDb db(SmallGem2());
  db.Insert({1, "v"});
  QueryResponse r = db.Query(0, 10);
  chain::AuthenticatedState state = db.environment().ReadAuthenticatedState("ads");
  state.digests[0].entry.digest[3] ^= 1;
  VerifiedResult vr = VerifyResponse(state, true, AdsKind::kGem2, r);
  EXPECT_FALSE(vr.ok);
  EXPECT_NE(vr.error.find("inclusion"), std::string::npos);
}

TEST(VerifyResponse, RejectsDuplicateTreeAnswers) {
  AuthenticatedDb db(SmallGem2());
  for (Key k = 1; k <= 10; ++k) db.Insert({k, "v"});
  QueryResponse r = db.Query(0, 100);
  r.trees.push_back({r.trees.back().label,
                     r.trees.back().objects,
                     ads::CloneVo(r.trees.back().vo)});
  EXPECT_FALSE(db.Verify(r).ok);
}

TEST(VerifyResponse, RejectsAnswerForUnknownTree) {
  AuthenticatedDb db(SmallGem2());
  db.Insert({1, "v"});
  QueryResponse r = db.Query(0, 10);
  TreeResultSet fake;
  fake.label = "P99.Tl";
  fake.vo.empty_tree = true;
  r.trees.push_back(std::move(fake));
  EXPECT_FALSE(db.Verify(r).ok);
}

TEST(VerifyResponse, VoSizesReported) {
  AuthenticatedDb db(SmallGem2());
  for (Key k = 1; k <= 50; ++k) db.Insert({k, "value"});
  VerifiedResult vr = db.AuthenticatedRange(10, 30);
  ASSERT_TRUE(vr.ok);
  EXPECT_GT(vr.vo_sp_bytes, 0u);
  EXPECT_GT(vr.vo_chain_bytes, 0u);
}

// --- GEM2* region completeness ---------------------------------------------

class Gem2StarResponse : public ::testing::Test {
 protected:
  void SetUp() override {
    DbOptions options;
    options.kind = AdsKind::kGem2Star;
    options.gem2.m = 2;
    options.gem2.smax = 16;
    options.split_points = {100, 200, 300};
    db_ = std::make_unique<AuthenticatedDb>(options);
    for (Key k = 10; k < 400; k += 10) db_->Insert({k, "v" + std::to_string(k)});
  }

  std::unique_ptr<AuthenticatedDb> db_;
};

TEST_F(Gem2StarResponse, HonestQueriesVerify) {
  VerifiedResult vr = db_->AuthenticatedRange(120, 280);
  ASSERT_TRUE(vr.ok) << vr.error;
  EXPECT_EQ(vr.objects.size(), 17u);  // 120..280 step 10
}

TEST_F(Gem2StarResponse, RejectsForgedSplitPoints) {
  QueryResponse r = db_->Query(120, 280);
  r.upper_splits = {150, 250};  // would shrink the required region set
  VerifiedResult vr = db_->Verify(r);
  EXPECT_FALSE(vr.ok);
  EXPECT_NE(vr.error.find("upper"), std::string::npos);
}

TEST_F(Gem2StarResponse, RejectsMissingRegionAnswer) {
  QueryResponse r = db_->Query(120, 280);
  // Drop every answer from region 2 (keys [200, 300)): completeness breach.
  std::erase_if(r.trees, [](const TreeResultSet& t) {
    return t.label.rfind("R2.", 0) == 0;
  });
  VerifiedResult vr = db_->Verify(r);
  EXPECT_FALSE(vr.ok);
}

TEST_F(Gem2StarResponse, IgnoresRegionsOutsideQuery) {
  // The SP may not answer for regions that cannot overlap; verification
  // still succeeds (Algorithm 8 only requires overlapping regions).
  QueryResponse r = db_->Query(120, 180);  // region 1 only
  for (const TreeResultSet& t : r.trees) {
    if (t.label != "P0") {
      EXPECT_EQ(t.label.rfind("R1.", 0), 0u);
    }
  }
  EXPECT_TRUE(db_->Verify(r).ok);
}

TEST_F(Gem2StarResponse, QueryAtRegionBoundary) {
  VerifiedResult vr = db_->AuthenticatedRange(100, 200);
  ASSERT_TRUE(vr.ok) << vr.error;
  EXPECT_EQ(vr.objects.size(), 11u);  // 100..200 step 10
}

}  // namespace
}  // namespace gem2::core
