// Soak test at the paper's exact Section VII-A parameters (M=8, Smax=2048,
// F=4, 100 regions, zipfian 0.8): a long mixed stream through the full
// pipeline with periodic verified queries and structural checks, for both
// GEM2 and GEM2*. Scaled by GEM2_SOAK_OPS (default 8000).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "core/authenticated_db.h"
#include "seed_util.h"
#include "workload/workload.h"

namespace gem2::core {
namespace {

uint64_t SoakOps() {
  const char* v = std::getenv("GEM2_SOAK_OPS");
  const long long parsed = v == nullptr ? 0 : std::atoll(v);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : 8000;
}

class SoakTest
    : public ::testing::TestWithParam<
          std::tuple<AdsKind, workload::KeyDistribution>> {};

TEST_P(SoakTest, PaperDefaultsLongStream) {
  const auto kind = std::get<0>(GetParam());
  const auto dist = std::get<1>(GetParam());

  testutil::SeedReporter seed(2026);
  workload::WorkloadOptions wopts;
  wopts.distribution = dist;
  wopts.zipf_constant = 0.8;
  wopts.update_ratio = 0.15;
  wopts.seed = seed;
  workload::WorkloadGenerator gen(wopts);

  DbOptions options;
  options.kind = kind;
  options.gem2.m = 8;        // paper defaults
  options.gem2.smax = 2048;
  options.gem2.fanout = 4;
  options.env.gas_limit = 1'000'000'000'000ull;
  if (kind == AdsKind::kGem2Star) options.split_points = gen.SplitPoints(100);
  AuthenticatedDb db(options);

  std::map<Key, std::string> truth;
  const uint64_t ops = SoakOps();
  for (uint64_t i = 0; i < ops; ++i) {
    workload::Operation op = gen.Next();
    chain::TxReceipt r = op.type == workload::Operation::Type::kInsert
                             ? db.Insert(op.object)
                             : db.Update(op.object);
    ASSERT_TRUE(r.ok) << "op " << i;
    truth[op.object.key] = op.object.value;

    if (i > 0 && i % (ops / 4) == 0) {
      db.CheckConsistency();
      workload::RangeQuerySpec spec = gen.NextQuery(0.02);
      VerifiedResult vr = db.AuthenticatedRange(spec.lb, spec.ub);
      ASSERT_TRUE(vr.ok) << vr.error;
      size_t expect = 0;
      for (const auto& [k, v] : truth) {
        if (k >= spec.lb && k <= spec.ub) ++expect;
      }
      ASSERT_EQ(vr.objects.size(), expect) << "op " << i;
    }
  }

  db.CheckConsistency();
  std::string error;
  EXPECT_TRUE(db.environment().blockchain().Validate(&error)) << error;

  // Full-range sweep must return exactly the ground truth.
  VerifiedResult all = db.AuthenticatedRange(kKeyMin, kKeyMax);
  ASSERT_TRUE(all.ok) << all.error;
  ASSERT_EQ(all.objects.size(), truth.size());
  auto it = truth.begin();
  for (const Object& obj : all.objects) {
    EXPECT_EQ(obj.key, it->first);
    EXPECT_EQ(obj.value, it->second);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperDefaults, SoakTest,
    ::testing::Combine(::testing::Values(AdsKind::kGem2, AdsKind::kGem2Star),
                       ::testing::Values(workload::KeyDistribution::kUniform,
                                         workload::KeyDistribution::kZipfian)),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) == AdsKind::kGem2 ? "Gem2" : "Gem2Star";
      return name + (std::get<1>(info.param) ==
                             workload::KeyDistribution::kUniform
                         ? "Uniform"
                         : "Zipfian");
    });

}  // namespace
}  // namespace gem2::core
