// GEM2*-tree tests: upper-level routing, region-pruned queries (Algorithms
// 7-8), the shared P0, upper-level authentication, and gas comparisons
// against the plain GEM2-tree.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "crypto/digest.h"
#include "gem2/engine.h"
#include "gem2star/gem2star.h"

namespace gem2::gem2star {
namespace {

Hash Vh(Key k) { return crypto::ValueHash("value-" + std::to_string(k)); }

Gem2Options SmallOptions() {
  Gem2Options o;
  o.m = 2;
  o.smax = 8;
  o.fanout = 4;
  return o;
}

TEST(Gem2Star, RegionRouting) {
  Gem2StarEngine engine(SmallOptions(), {100, 200, 300});
  EXPECT_EQ(engine.num_regions(), 4u);
  EXPECT_EQ(engine.RegionOf(-5), 0u);
  EXPECT_EQ(engine.RegionOf(99), 0u);
  EXPECT_EQ(engine.RegionOf(100), 1u);
  EXPECT_EQ(engine.RegionOf(250), 2u);
  EXPECT_EQ(engine.RegionOf(300), 3u);
  EXPECT_EQ(engine.RegionOf(kKeyMax), 3u);
}

TEST(Gem2Star, RejectsUnsortedSplits) {
  EXPECT_THROW(Gem2StarEngine(SmallOptions(), {5, 5}), std::invalid_argument);
  EXPECT_THROW(Gem2StarEngine(SmallOptions(), {7, 3}), std::invalid_argument);
}

TEST(Gem2Star, NoSplitsDegeneratesToSingleRegion) {
  Gem2StarEngine engine(SmallOptions(), {});
  EXPECT_EQ(engine.num_regions(), 1u);
  for (Key k = 1; k <= 30; ++k) engine.Insert(k, Vh(k));
  engine.CheckInvariants();
  EXPECT_EQ(engine.size(), 30u);
}

TEST(Gem2Star, RegionsShareOneP0) {
  Gem2StarEngine engine(SmallOptions(), {500});
  // Fill both regions past Smax so both bulk into the shared P0.
  for (Key k = 1; k <= 40; ++k) engine.Insert(k, Vh(k));          // region 0
  for (Key k = 1000; k <= 1040; ++k) engine.Insert(k, Vh(k));     // region 1
  engine.CheckInvariants();
  EXPECT_GT(engine.p0().size(), 0u);
  EXPECT_EQ(engine.region_chain(0).bulked_to_p0() +
                engine.region_chain(1).bulked_to_p0(),
            engine.p0().size());
}

TEST(Gem2Star, QueryOnlyTouchesOverlappingRegions) {
  Gem2StarEngine engine(SmallOptions(), {100, 200, 300});
  for (Key k = 1; k <= 350; k += 7) engine.Insert(k, Vh(k));

  // A query inside [100, 200) must not produce answers for other regions.
  auto answers = engine.Query(120, 180);
  for (const ads::TreeAnswer& a : answers) {
    if (a.label == "P0") continue;
    EXPECT_EQ(a.label.rfind("R1.", 0), 0u) << a.label;
  }
  EXPECT_EQ(engine.RegionsOverlapping(120, 180), (std::vector<size_t>{1}));
  EXPECT_EQ(engine.RegionsOverlapping(50, 250),
            (std::vector<size_t>{0, 1, 2}));
}

TEST(Gem2Star, UpperLevelDigestBindsSplitPoints) {
  EXPECT_NE(UpperLevelDigest({1, 2, 3}), UpperLevelDigest({1, 2, 4}));
  EXPECT_NE(UpperLevelDigest({}), UpperLevelDigest({1}));
  Gem2StarEngine engine(SmallOptions(), {10, 20});
  auto digests = engine.Digests();
  ASSERT_FALSE(digests.empty());
  EXPECT_EQ(digests[0].label, "upper");
  EXPECT_EQ(digests[0].digest, UpperLevelDigest({10, 20}));
}

TEST(Gem2Star, UpdatesRouteThroughRegions) {
  Gem2StarEngine engine(SmallOptions(), {100});
  engine.Insert(50, Vh(50));
  engine.Insert(150, Vh(150));
  auto before = engine.Digests();
  engine.Update(150, crypto::ValueHash("new"));
  auto after = engine.Digests();
  EXPECT_NE(before, after);
  engine.CheckInvariants();
  EXPECT_THROW(engine.Update(151, Vh(151)), std::invalid_argument);
}

TEST(Gem2Star, ResultsMatchBruteForceAcrossManyRegions) {
  std::vector<Key> splits;
  for (Key s = 1000; s < 20'000; s += 1000) splits.push_back(s);
  Gem2StarEngine engine(SmallOptions(), splits);

  std::mt19937_64 rng(3);
  std::map<Key, Hash> truth;
  for (int i = 0; i < 1200; ++i) {
    Key k;
    do {
      k = static_cast<Key>(rng() % 20'000);
    } while (truth.count(k) != 0);
    engine.Insert(k, Vh(k));
    truth.emplace(k, Vh(k));
  }
  engine.CheckInvariants();

  for (auto [lb, ub] : std::vector<std::pair<Key, Key>>{
           {0, 20'000}, {2'500, 2'600}, {900, 4'100}, {19'999, 30'000}}) {
    size_t found = 0;
    for (const ads::TreeAnswer& a : engine.Query(lb, ub)) {
      for (const ads::Entry& e : a.result) {
        ASSERT_TRUE(truth.count(e.key));
        EXPECT_GE(e.key, lb);
        EXPECT_LE(e.key, ub);
        ++found;
      }
    }
    size_t expect = 0;
    for (const auto& [k, vh] : truth) {
      if (k >= lb && k <= ub) ++expect;
    }
    EXPECT_EQ(found, expect) << "[" << lb << "," << ub << "]";
  }
}

TEST(Gem2StarGas, CheaperThanPlainGem2OnUniformKeys) {
  // Section VI-A: the two-level split yields additional gas savings.
  Gem2Options options;
  options.m = 8;
  options.smax = 256;

  std::vector<Key> splits;
  for (Key s = 100'000; s < 1'000'000; s += 100'000) splits.push_back(s);

  Gem2StarContract star("star", options, splits);
  gem2tree::Gem2Contract plain("plain", options);

  std::mt19937_64 rng(17);
  uint64_t star_gas = 0;
  uint64_t plain_gas = 0;
  for (int i = 0; i < 4000; ++i) {
    Key k;
    do {
      k = static_cast<Key>(rng() % 1'000'000);
    } while (star.engine().Contains(k));
    gas::Meter m1(gas::kEthereumSchedule, 1ull << 60);
    star.Insert(k, Vh(k), m1);
    star_gas += m1.used();
    gas::Meter m2(gas::kEthereumSchedule, 1ull << 60);
    plain.Insert(k, Vh(k), m2);
    plain_gas += m2.used();
  }
  EXPECT_LT(star_gas, plain_gas);
}

TEST(Gem2StarGas, UpperLevelLookupChargesLogRegions) {
  std::vector<Key> splits;
  for (Key s = 1; s <= 127; ++s) splits.push_back(s * 100);  // 128 regions
  Gem2StarEngine engine(SmallOptions(), splits, nullptr);
  gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
  engine.RegionOf(650, &meter);
  EXPECT_EQ(meter.op_counts().sload, 7u);  // ceil(log2(127)) = 7
}

}  // namespace
}  // namespace gem2::gem2star
