// RLP and Merkle Patricia Trie tests: yellow-paper vectors for RLP, the
// canonical empty-trie root, order-independent roots, inclusion proofs, and
// adversarial proof rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "crypto/mpt.h"
#include "crypto/rlp.h"

namespace gem2::crypto {
namespace {

Bytes Str(const std::string& s) { return Bytes(s.begin(), s.end()); }

// --- RLP ------------------------------------------------------------------------

TEST(Rlp, YellowPaperVectors) {
  // "dog" -> [0x83, 'd', 'o', 'g']
  EXPECT_EQ(rlp::EncodeString(Str("dog")), (Bytes{0x83, 'd', 'o', 'g'}));
  // empty string -> 0x80
  EXPECT_EQ(rlp::EncodeString({}), (Bytes{0x80}));
  // single byte < 0x80 encodes as itself
  EXPECT_EQ(rlp::EncodeString({0x0f}), (Bytes{0x0f}));
  // 0x80 must be escaped
  EXPECT_EQ(rlp::EncodeString({0x80}), (Bytes{0x81, 0x80}));
  // ["cat", "dog"] -> 0xc8 0x83 c a t 0x83 d o g
  auto list = rlp::Item::List(
      {rlp::Item::String(Str("cat")), rlp::Item::String(Str("dog"))});
  EXPECT_EQ(rlp::Encode(list),
            (Bytes{0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'}));
  // empty list -> 0xc0
  EXPECT_EQ(rlp::Encode(rlp::Item::List({})), (Bytes{0xc0}));
  // Lorem ipsum (56 bytes): long-string form 0xb8 0x38 ...
  std::string lorem = "Lorem ipsum dolor sit amet, consectetur adipisicing elit";
  Bytes enc = rlp::EncodeString(Str(lorem));
  EXPECT_EQ(enc[0], 0xb8);
  EXPECT_EQ(enc[1], lorem.size());
}

TEST(Rlp, RoundTrips) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    // Random nested structure of depth <= 3.
    std::function<rlp::Item(int)> gen = [&](int depth) {
      if (depth == 0 || rng() % 2 == 0) {
        Bytes s(rng() % 70);
        for (auto& b : s) b = static_cast<uint8_t>(rng());
        return rlp::Item::String(std::move(s));
      }
      std::vector<rlp::Item> items;
      const size_t n = rng() % 5;
      for (size_t i = 0; i < n; ++i) items.push_back(gen(depth - 1));
      return rlp::Item::List(std::move(items));
    };
    rlp::Item item = gen(3);
    auto decoded = rlp::Decode(rlp::Encode(item));
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    EXPECT_EQ(*decoded, item);
  }
}

TEST(Rlp, RejectsNonCanonicalInput) {
  EXPECT_FALSE(rlp::Decode({}).has_value());
  EXPECT_FALSE(rlp::Decode({0x81, 0x05}).has_value());  // 0x05 must be bare
  EXPECT_FALSE(rlp::Decode({0xb8, 0x01, 0xaa}).has_value());  // long form for 1 byte
  EXPECT_FALSE(rlp::Decode({0x83, 'a', 'b'}).has_value());    // truncated
  EXPECT_FALSE(rlp::Decode({0x80, 0x00}).has_value());        // trailing bytes
  EXPECT_FALSE(rlp::Decode({0xc2, 0x83, 'a'}).has_value());   // bad nested item
}

// --- MPT ------------------------------------------------------------------------

TEST(Mpt, EmptyRootMatchesEthereum) {
  PatriciaTrie trie;
  // keccak(rlp("")) — Ethereum's famous empty-trie root.
  EXPECT_EQ(ToHex(trie.RootHash()),
            "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
}

TEST(Mpt, PutGetOverwrite) {
  PatriciaTrie trie;
  trie.Put(Str("do"), Str("verb"));
  trie.Put(Str("dog"), Str("puppy"));
  trie.Put(Str("doge"), Str("coin"));
  trie.Put(Str("horse"), Str("stallion"));
  EXPECT_EQ(trie.size(), 4u);
  EXPECT_EQ(trie.Get(Str("dog")), Str("puppy"));
  EXPECT_EQ(trie.Get(Str("do")), Str("verb"));
  EXPECT_EQ(trie.Get(Str("horse")), Str("stallion"));
  EXPECT_FALSE(trie.Get(Str("dogs")).has_value());
  EXPECT_FALSE(trie.Get(Str("d")).has_value());

  Hash before = trie.RootHash();
  trie.Put(Str("dog"), Str("cat"));
  EXPECT_EQ(trie.size(), 4u);  // overwrite, not insert
  EXPECT_EQ(trie.Get(Str("dog")), Str("cat"));
  EXPECT_NE(trie.RootHash(), before);
}

TEST(Mpt, RootIsInsertionOrderIndependent) {
  // Distinct keys with dense shared prefixes (exercises branch/extension
  // splits); the final root must not depend on insertion order.
  std::map<Bytes, Bytes> model;
  std::mt19937_64 rng(5);
  while (model.size() < 300) {
    Bytes key(1 + rng() % 8);
    for (auto& b : key) b = static_cast<uint8_t>(rng() % 16);  // dense prefixes
    model.emplace(key, Str("v" + std::to_string(model.size())));
  }
  std::vector<std::pair<Bytes, Bytes>> kv(model.begin(), model.end());
  PatriciaTrie forward;
  for (const auto& [k, v] : kv) forward.Put(k, v);
  std::shuffle(kv.begin(), kv.end(), rng);
  PatriciaTrie shuffled;
  for (const auto& [k, v] : kv) shuffled.Put(k, v);
  EXPECT_EQ(forward.RootHash(), shuffled.RootHash());
}

TEST(Mpt, EmptyValueRejected) {
  PatriciaTrie trie;
  EXPECT_THROW(trie.Put(Str("k"), {}), std::invalid_argument);
}

class MptProofTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MptProofTest, AllProofsVerify) {
  const size_t n = GetParam();
  PatriciaTrie trie;
  std::map<Bytes, Bytes> model;
  std::mt19937_64 rng(n);
  for (size_t i = 0; i < n; ++i) {
    Bytes key(1 + rng() % 6);
    for (auto& b : key) b = static_cast<uint8_t>(rng() % 8);
    Bytes value = Str("value-" + std::to_string(i));
    trie.Put(key, value);
    model[key] = value;
  }
  const Hash root = trie.RootHash();
  for (const auto& [key, value] : model) {
    PatriciaTrie::Proof proof = trie.Prove(key);
    EXPECT_TRUE(PatriciaTrie::VerifyProof(root, key, value, proof));
    // Wrong value fails.
    EXPECT_FALSE(PatriciaTrie::VerifyProof(root, key, Str("forged"), proof));
    // Wrong root fails.
    Hash bad_root = root;
    bad_root[0] ^= 1;
    EXPECT_FALSE(PatriciaTrie::VerifyProof(bad_root, key, value, proof));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MptProofTest,
                         ::testing::Values(1, 2, 3, 5, 16, 64, 200));

TEST(MptProof, AbsentKeyThrows) {
  PatriciaTrie trie;
  trie.Put(Str("alpha"), Str("1"));
  EXPECT_THROW(trie.Prove(Str("beta")), std::out_of_range);
  EXPECT_THROW(trie.Prove(Str("alp")), std::out_of_range);
  EXPECT_THROW(trie.Prove(Str("alphabet")), std::out_of_range);
}

TEST(MptProof, ProofForOneKeyDoesNotProveAnother) {
  PatriciaTrie trie;
  trie.Put(Str("aaa"), Str("1"));
  trie.Put(Str("aab"), Str("2"));
  const Hash root = trie.RootHash();
  PatriciaTrie::Proof proof = trie.Prove(Str("aaa"));
  EXPECT_TRUE(PatriciaTrie::VerifyProof(root, Str("aaa"), Str("1"), proof));
  EXPECT_FALSE(PatriciaTrie::VerifyProof(root, Str("aab"), Str("2"), proof));
  EXPECT_FALSE(PatriciaTrie::VerifyProof(root, Str("aab"), Str("1"), proof));
}

TEST(MptProof, TamperedProofNodesRejected) {
  PatriciaTrie trie;
  for (int i = 0; i < 50; ++i) {
    trie.Put(Str("key-" + std::to_string(i)), Str("value-" + std::to_string(i)));
  }
  const Hash root = trie.RootHash();
  const Bytes key = Str("key-17");
  const Bytes value = Str("value-17");
  PatriciaTrie::Proof proof = trie.Prove(key);
  ASSERT_TRUE(PatriciaTrie::VerifyProof(root, key, value, proof));

  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    PatriciaTrie::Proof bad = proof;
    Bytes& node = bad[rng() % bad.size()];
    node[rng() % node.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
    EXPECT_FALSE(PatriciaTrie::VerifyProof(root, key, value, bad))
        << "trial " << trial;
  }
  // Truncated and padded proofs fail too.
  PatriciaTrie::Proof short_proof(proof.begin(), proof.end() - 1);
  EXPECT_FALSE(PatriciaTrie::VerifyProof(root, key, value, short_proof));
  PatriciaTrie::Proof long_proof = proof;
  long_proof.push_back(proof.back());
  EXPECT_FALSE(PatriciaTrie::VerifyProof(root, key, value, long_proof));
}

TEST(Mpt, DifferentContentsDifferentRoots) {
  PatriciaTrie a;
  PatriciaTrie b;
  a.Put(Str("k1"), Str("v1"));
  b.Put(Str("k1"), Str("v2"));
  EXPECT_NE(a.RootHash(), b.RootHash());
  PatriciaTrie c;
  c.Put(Str("k2"), Str("v1"));
  EXPECT_NE(a.RootHash(), c.RootHash());
}

}  // namespace
}  // namespace gem2::crypto
