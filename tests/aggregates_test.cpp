// Client-side authenticated aggregates: derived only from verified results.
#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/authenticated_db.h"

namespace gem2::core {
namespace {

DbOptions SmallGem2() {
  DbOptions o;
  o.kind = AdsKind::kGem2;
  o.gem2.m = 2;
  o.gem2.smax = 16;
  return o;
}

TEST(Aggregates, CountMinMaxSum) {
  AuthenticatedDb db(SmallGem2());
  for (Key k = 1; k <= 10; ++k) db.Insert({k * 10, std::to_string(k * 100)});

  VerifiedResult vr = db.AuthenticatedRange(25, 75);
  ASSERT_TRUE(vr.ok);
  auto agg = Aggregate(vr);
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->count, 5u);  // keys 30,40,50,60,70
  EXPECT_EQ(*agg->min_key, 30);
  EXPECT_EQ(*agg->max_key, 70);
  ASSERT_TRUE(agg->sum.has_value());
  EXPECT_EQ(*agg->sum, 300 + 400 + 500 + 600 + 700);
}

TEST(Aggregates, EmptyRange) {
  AuthenticatedDb db(SmallGem2());
  db.Insert({5, "100"});
  VerifiedResult vr = db.AuthenticatedRange(10, 20);
  ASSERT_TRUE(vr.ok);
  auto agg = Aggregate(vr);
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->count, 0u);
  EXPECT_FALSE(agg->min_key.has_value());
  EXPECT_FALSE(agg->sum.has_value());
}

TEST(Aggregates, NonNumericPayloadsDisableSum) {
  AuthenticatedDb db(SmallGem2());
  db.Insert({1, "100"});
  db.Insert({2, "not a number"});
  VerifiedResult vr = db.AuthenticatedRange(0, 10);
  ASSERT_TRUE(vr.ok);
  auto agg = Aggregate(vr);
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->count, 2u);
  EXPECT_FALSE(agg->sum.has_value());
}

TEST(Aggregates, RefusesUnverifiedResults) {
  VerifiedResult bad;
  bad.ok = false;
  EXPECT_FALSE(Aggregate(bad).has_value());
}

TEST(Aggregates, DeletedObjectsExcluded) {
  AuthenticatedDb db(SmallGem2());
  for (Key k = 1; k <= 5; ++k) db.Insert({k, "10"});
  db.Delete(3);
  VerifiedResult vr = db.AuthenticatedRange(1, 5);
  ASSERT_TRUE(vr.ok);
  auto agg = Aggregate(vr);
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->count, 4u);
  EXPECT_EQ(*agg->sum, 40);
}

TEST(Aggregates, NegativeNumbersAndKeys) {
  AuthenticatedDb db(SmallGem2());
  db.Insert({-10, "-5"});
  db.Insert({-5, "15"});
  VerifiedResult vr = db.AuthenticatedRange(-100, 0);
  ASSERT_TRUE(vr.ok);
  auto agg = Aggregate(vr);
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(*agg->min_key, -10);
  EXPECT_EQ(*agg->max_key, -5);
  EXPECT_EQ(*agg->sum, 10);
}

}  // namespace
}  // namespace gem2::core
