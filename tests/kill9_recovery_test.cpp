// The real thing: a forked SP process journaling through the durable store
// onto the actual filesystem is SIGKILLed mid-write, and recovery from the
// surviving bytes alone must reproduce every acknowledged operation and a
// chain commitment that matches a reference rebuilt from the same op stream
// bit for bit.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/authenticated_db.h"
#include "fault/failpoint_sweep.h"
#include "fault/recovery.h"
#include "seed_util.h"
#include "store/durable_journal.h"
#include "store/vfs.h"

namespace gem2::fault {
namespace {

using core::AdsKind;
using core::AuthenticatedDb;
using core::DbOptions;
using testutil::SeedReporter;

DbOptions MakeOptions() {
  DbOptions options;
  options.kind = AdsKind::kGem2;
  options.gem2.m = 4;
  options.gem2.smax = 64;
  options.env.gas_limit = 1'000'000'000'000ull;
  return options;
}

bool ApplyToDb(AuthenticatedDb* db, const core::JournalEntry& entry) {
  switch (entry.op) {
    case core::JournalEntry::Op::kInsert:
      return db->Insert(entry.object).ok;
    case core::JournalEntry::Op::kUpdate:
      return db->Update(entry.object).ok;
    case core::JournalEntry::Op::kDelete:
      return db->Delete(entry.object.key).ok;
  }
  return false;
}

/// The child SP process: every op is durably journaled (kEveryRecord) before
/// the ack byte goes down the pipe. Never returns; exit codes mark setup
/// failures so the parent's waitpid can tell them from the expected SIGKILL.
[[noreturn]] void RunChildSp(const std::string& journal_dir, uint64_t seed,
                             size_t ops, int ack_fd) {
  store::PosixVfs vfs;
  std::string error;
  auto sink = store::DurableJournal::Open(&vfs, journal_dir, 0,
                                          store::JournalOptions{}, &error);
  if (sink == nullptr) _exit(41);
  DbOptions options = MakeOptions();
  options.journal_sink = sink.get();
  AuthenticatedDb db(options);
  for (const core::JournalEntry& entry : OwnerStream(seed, ops)) {
    if (!ApplyToDb(&db, entry)) _exit(42);
    const char ack = 1;
    if (write(ack_fd, &ack, 1) != 1) _exit(43);
  }
  _exit(0);  // outran the killer — the parent treats this as a test failure
}

TEST(Kill9Recovery, RecoveredSpMatchesTheAckedPrefixBitForBit) {
  SeedReporter seed(31337);
  constexpr size_t kOps = 160;
  constexpr size_t kKillAfter = 60;

  // GEM2_KILL9_KEEP_DIR: use that path and leave the post-kill store on disk
  // — CI's fsck smoke runs gem2_fsck --check/--repair over the real carnage.
  const char* keep = std::getenv("GEM2_KILL9_KEEP_DIR");
  char tmpl[] = "/tmp/gem2_kill9_XXXXXX";
  std::string root;
  if (keep != nullptr && *keep != '\0') {
    root = keep;
  } else {
    char* dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    root = dir;
  }
  const std::string journal_dir = root + "/journal";

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close(fds[0]);
    RunChildSp(journal_dir, seed, kOps, fds[1]);
  }
  close(fds[1]);

  // Count acks until the kill threshold, then SIGKILL mid-stream — the child
  // is most likely inside the next op's append or fsync when it dies.
  size_t acked = 0;
  char byte = 0;
  while (acked < kKillAfter) {
    const ssize_t n = read(fds[0], &byte, 1);
    if (n == 1) {
      ++acked;
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      break;  // child exited early; waitpid below reports why
    }
  }
  kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child did not die by SIGKILL (status " << status << ")";
  // Acks that raced in between our last read and the signal are real acks.
  while (read(fds[0], &byte, 1) == 1) ++acked;
  close(fds[0]);
  ASSERT_GE(acked, kKillAfter);
  ASSERT_LT(acked, kOps) << "the kill never landed mid-stream";

  // Recovery from the on-disk bytes alone.
  store::PosixVfs vfs;
  const store::JournalRecovery recovery = store::RecoverJournal(&vfs, journal_dir);
  ASSERT_TRUE(recovery.ok) << recovery.error;
  const size_t recovered_ops = recovery.entries.size();

  // The durability floor: kEveryRecord synced each op before its ack, so
  // every acked op must be in the recovered stream.
  EXPECT_GE(recovered_ops, acked) << "acked operations were lost";
  ASSERT_LE(recovered_ops, kOps);

  // The recovered entries are exactly the stream prefix, byte for byte.
  const auto stream = OwnerStream(seed, kOps);
  for (size_t i = 0; i < recovered_ops; ++i) {
    ASSERT_EQ(recovery.entries[i], stream[i]) << "diverged at op " << i;
  }

  // Reference: replay the same prefix through a fresh instance — this
  // regenerates, deterministically, the chain the child committed.
  AuthenticatedDb reference(MakeOptions());
  for (size_t i = 0; i < recovered_ops; ++i) {
    ASSERT_TRUE(ApplyToDb(&reference, stream[i]));
  }

  core::Journal durable;
  for (const core::JournalEntry& entry : recovery.entries) {
    durable.Record(entry);
  }
  std::unique_ptr<AuthenticatedDb> rebuilt =
      AuthenticatedDb::Replay(MakeOptions(), durable);
  EXPECT_EQ(rebuilt->ChainDigests(), reference.ChainDigests());
  EXPECT_EQ(rebuilt->environment().CurrentStateRoot(),
            reference.environment().CurrentStateRoot());

  // And the client agrees: the rebuilt SP's answers verify against the
  // reference's chain.
  const core::VerifiedResult vr =
      CrossVerifyAgainst(reference, *rebuilt, kKeyMin, kKeyMax);
  EXPECT_TRUE(vr.ok) << vr.error;

  // Best-effort cleanup of the temp tree (skipped under GEM2_KILL9_KEEP_DIR).
  if (keep == nullptr || *keep == '\0') {
    if (auto names = vfs.ListDir(journal_dir); names.has_value()) {
      for (const std::string& name : *names) {
        vfs.RemoveFile(journal_dir + "/" + name);
      }
    }
    rmdir(journal_dir.c_str());
    rmdir(root.c_str());
  }
}

}  // namespace
}  // namespace gem2::fault
