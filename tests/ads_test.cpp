// ADS common-layer tests: canonical static trees, VO structure/serialization,
// and the single-tree verifier's soundness and completeness checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>

#include "ads/static_tree.h"
#include "ads/verify.h"
#include "ads/vo.h"
#include "crypto/digest.h"

namespace gem2::ads {
namespace {

EntryList MakeEntries(size_t n, Key stride = 10, Key base = 0) {
  EntryList entries;
  for (size_t i = 0; i < n; ++i) {
    Key k = base + static_cast<Key>(i) * stride;
    entries.push_back({k, crypto::ValueHash("value-" + std::to_string(k))});
  }
  return entries;
}

std::vector<Object> ObjectsFor(const EntryList& result) {
  std::vector<Object> objects;
  for (const Entry& e : result) {
    objects.push_back({e.key, "value-" + std::to_string(e.key)});
  }
  return objects;
}

// --- StaticTree ---------------------------------------------------------------

TEST(StaticTree, EmptyTree) {
  StaticTree tree({}, 4);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.root_digest(), crypto::EmptyTreeDigest());
  EntryList result;
  TreeVo vo = tree.RangeQuery(0, 100, &result);
  EXPECT_TRUE(vo.empty_tree);
  EXPECT_TRUE(result.empty());
}

TEST(StaticTree, RejectsBadInput) {
  EXPECT_THROW(StaticTree(MakeEntries(4), 1), std::invalid_argument);
  EntryList unsorted = {{5, {}}, {3, {}}};
  EXPECT_THROW(StaticTree(unsorted, 4), std::invalid_argument);
  EntryList dup = {{5, {}}, {5, {}}};
  EXPECT_THROW(StaticTree(dup, 4), std::invalid_argument);
}

TEST(StaticTree, BoundariesAndSize) {
  StaticTree tree(MakeEntries(10, 7, 3), 4);
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_EQ(tree.lo(), 3);
  EXPECT_EQ(tree.hi(), 3 + 9 * 7);
}

class StaticTreeParam
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(StaticTreeParam, CanonicalDigestMatchesMaterializedTree) {
  auto [n, fanout] = GetParam();
  EntryList entries = MakeEntries(n);
  StaticTree tree(entries, fanout);
  // The suppressed on-the-fly computation must agree bit-for-bit.
  EXPECT_EQ(CanonicalRootDigest(entries, fanout), tree.root_digest());
  // ... and with a meter attached (same digest, gas charged).
  gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
  EXPECT_EQ(CanonicalRootDigest(entries, fanout, &meter), tree.root_digest());
  if (n > 0) {
    EXPECT_GT(meter.used(), 0u);
  }
}

TEST_P(StaticTreeParam, QueriesVerifyAgainstRoot) {
  auto [n, fanout] = GetParam();
  if (n == 0) GTEST_SKIP();
  EntryList entries = MakeEntries(n);
  StaticTree tree(entries, fanout);
  const Key max_key = entries.back().key;
  const std::pair<Key, Key> ranges[] = {
      {0, max_key}, {-5, -1}, {max_key + 1, max_key + 100},
      {max_key / 3, 2 * max_key / 3}, {15, 15}, {0, 0}};
  for (auto [lb, ub] : ranges) {
    EntryList result;
    TreeVo vo = tree.RangeQuery(lb, ub, &result);
    EntryList expect;
    for (const Entry& e : entries) {
      if (e.key >= lb && e.key <= ub) expect.push_back(e);
    }
    EXPECT_EQ(result, expect);
    auto outcome = VerifyTreeVo(lb, ub, vo, tree.root_digest(), ObjectsFor(result));
    EXPECT_TRUE(outcome.ok) << outcome.error << " n=" << n << " f=" << fanout
                            << " [" << lb << "," << ub << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFanouts, StaticTreeParam,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 16, 17, 64, 100, 333),
                       ::testing::Values(2, 3, 4, 8)));

TEST(StaticTree, DigestDependsOnEveryEntry) {
  EntryList entries = MakeEntries(20);
  Hash base = CanonicalRootDigest(entries, 4);
  for (size_t i = 0; i < entries.size(); ++i) {
    EntryList copy = entries;
    copy[i].value_hash = crypto::ValueHash("tampered");
    EXPECT_NE(CanonicalRootDigest(copy, 4), base) << i;
  }
}

TEST(StaticTree, MeteredHashChargesMatchComputation) {
  // Entry digests: 40 bytes each; per node: content (32*children) + wrap (48).
  EntryList entries = MakeEntries(16);
  gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
  CanonicalRootDigest(entries, 4, &meter);
  // 16 entries -> 4 leaves -> 1 root: 16 entry hashes + 5 content + 5 wrap.
  EXPECT_EQ(meter.op_counts().hash_calls, 16u + 5u + 5u);
}

// --- VO serialization ----------------------------------------------------------

TEST(Vo, SerializationRoundTrips) {
  StaticTree tree(MakeEntries(100), 4);
  EntryList result;
  TreeVo vo = tree.RangeQuery(100, 500, &result);

  Bytes wire = SerializeTreeVo(vo);
  EXPECT_EQ(wire.size(), VoSizeBytes(vo));
  auto parsed = ParseTreeVo(wire);
  ASSERT_TRUE(parsed.has_value());
  // Round-tripped VO verifies identically.
  auto outcome =
      VerifyTreeVo(100, 500, *parsed, tree.root_digest(), ObjectsFor(result));
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(SerializeTreeVo(*parsed), wire);
}

TEST(Vo, EmptyVoRoundTrips) {
  TreeVo vo;
  vo.empty_tree = true;
  Bytes wire = SerializeTreeVo(vo);
  EXPECT_EQ(wire.size(), 1u);
  auto parsed = ParseTreeVo(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty_tree);
}

TEST(Vo, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseTreeVo({}).has_value());
  EXPECT_FALSE(ParseTreeVo({9}).has_value());           // unknown header
  EXPECT_FALSE(ParseTreeVo({1}).has_value());           // missing root
  EXPECT_FALSE(ParseTreeVo({1, 4, 0}).has_value());     // truncated node count
  EXPECT_FALSE(ParseTreeVo({1, 1, 1, 2}).has_value());  // truncated key
  EXPECT_FALSE(ParseTreeVo({0, 0}).has_value());        // trailing bytes

  // Valid VO with trailing garbage must be rejected.
  StaticTree tree(MakeEntries(10), 4);
  EntryList result;
  Bytes wire = SerializeTreeVo(tree.RangeQuery(0, 50, &result));
  wire.push_back(0);
  EXPECT_FALSE(ParseTreeVo(wire).has_value());
}

TEST(Vo, CloneIsDeep) {
  StaticTree tree(MakeEntries(50), 4);
  EntryList result;
  TreeVo vo = tree.RangeQuery(100, 300, &result);
  TreeVo copy = CloneVo(vo);
  EXPECT_EQ(SerializeTreeVo(copy), SerializeTreeVo(vo));
  // Mutating the copy leaves the original intact.
  auto* node = std::get_if<VoNodePtr>(&*copy.root);
  ASSERT_NE(node, nullptr);
  (*node)->children.clear();
  EXPECT_NE(SerializeTreeVo(copy), SerializeTreeVo(vo));
}

TEST(Vo, SizeAccountingExact) {
  // Single-leaf tree over {0, 10, 20, 30}; wire sizes are fully predictable:
  // header 1; node tag+count 3; result entry 9; boundary entry 41; pruned 49.
  StaticTree tree(MakeEntries(4), 4);
  EntryList result;
  TreeVo all_results = tree.RangeQuery(0, 30, &result);
  EXPECT_EQ(VoSizeBytes(all_results), 1u + 3u + 4u * 9u);

  EntryList mixed_result;
  TreeVo mixed = tree.RangeQuery(10, 20, &mixed_result);
  EXPECT_EQ(VoSizeBytes(mixed), 1u + 3u + 2u * 9u + 2u * 41u);

  EntryList no_result;
  TreeVo disjoint = tree.RangeQuery(100, 200, &no_result);
  EXPECT_EQ(VoSizeBytes(disjoint), 1u + 49u);
}

// --- Verifier adversarial cases ------------------------------------------------

class VerifierAttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    entries_ = MakeEntries(64);
    tree_ = std::make_unique<StaticTree>(entries_, 4);
    vo_ = tree_->RangeQuery(kLb, kUb, &result_);
    objects_ = ObjectsFor(result_);
    ASSERT_TRUE(VerifyTreeVo(kLb, kUb, vo_, tree_->root_digest(), objects_).ok);
  }

  static constexpr Key kLb = 200;
  static constexpr Key kUb = 400;
  EntryList entries_;
  std::unique_ptr<StaticTree> tree_;
  TreeVo vo_;
  EntryList result_;
  std::vector<Object> objects_;
};

TEST_F(VerifierAttackTest, RejectsWrongRoot) {
  Hash wrong = crypto::ValueHash("wrong");
  EXPECT_FALSE(VerifyTreeVo(kLb, kUb, vo_, wrong, objects_).ok);
}

TEST_F(VerifierAttackTest, RejectsEmptyClaimForNonEmptyTree) {
  TreeVo empty;
  empty.empty_tree = true;
  EXPECT_FALSE(VerifyTreeVo(kLb, kUb, empty, tree_->root_digest(), {}).ok);
}

TEST_F(VerifierAttackTest, RejectsSwappedChildren) {
  TreeVo bad = CloneVo(vo_);
  auto* root = std::get_if<VoNodePtr>(&*bad.root);
  ASSERT_NE(root, nullptr);
  ASSERT_GE((*root)->children.size(), 2u);
  std::swap((*root)->children[0], (*root)->children[1]);
  EXPECT_FALSE(VerifyTreeVo(kLb, kUb, bad, tree_->root_digest(), objects_).ok);
}

TEST_F(VerifierAttackTest, RejectsPrunedSubtreeOverlappingRange) {
  // Replace the expanded root with a pruned claim covering the whole tree —
  // even with the correct content hash, pruning an overlapping range must be
  // rejected (it would hide results).
  TreeVo bad = CloneVo(vo_);
  // Obtain the root's true (lo, hi, content hash) via a disjoint query, where
  // the SP legitimately prunes the whole tree.
  EntryList unused;
  TreeVo pruned_vo = tree_->RangeQuery(100'000, 200'000, &unused);
  const auto* pruned = std::get_if<VoPruned>(&*pruned_vo.root);
  ASSERT_NE(pruned, nullptr);
  bad.root = *pruned;
  EXPECT_FALSE(VerifyTreeVo(kLb, kUb, bad, tree_->root_digest(), {}).ok);
}

TEST_F(VerifierAttackTest, RejectsBoundaryEntryMarkedAsResult) {
  // Flip a boundary entry into a "result" without shipping the object.
  TreeVo bad = CloneVo(vo_);
  bool flipped = false;
  std::function<void(VoChild&)> walk = [&](VoChild& child) {
    if (auto* e = std::get_if<VoEntry>(&child)) {
      if (!e->is_result && !flipped) {
        e->is_result = true;
        flipped = true;
      }
    } else if (auto* n = std::get_if<VoNodePtr>(&child)) {
      for (VoChild& c : (*n)->children) walk(c);
    }
  };
  walk(*bad.root);
  ASSERT_TRUE(flipped);
  EXPECT_FALSE(VerifyTreeVo(kLb, kUb, bad, tree_->root_digest(), objects_).ok);
}

TEST_F(VerifierAttackTest, RejectsResultEntryDemotedToBoundary) {
  // Hide a result by re-marking its VO entry as a boundary with the correct
  // hash — completeness check must catch the in-range non-result entry.
  TreeVo bad = CloneVo(vo_);
  bool flipped = false;
  std::function<void(VoChild&)> walk = [&](VoChild& child) {
    if (auto* e = std::get_if<VoEntry>(&child)) {
      if (e->is_result && !flipped) {
        e->is_result = false;
        e->value_hash = crypto::ValueHash("value-" + std::to_string(e->key));
        flipped = true;
      }
    } else if (auto* n = std::get_if<VoNodePtr>(&child)) {
      for (VoChild& c : (*n)->children) walk(c);
    }
  };
  walk(*bad.root);
  ASSERT_TRUE(flipped);
  std::vector<Object> fewer = objects_;
  fewer.erase(fewer.begin());
  EXPECT_FALSE(VerifyTreeVo(kLb, kUb, bad, tree_->root_digest(), fewer).ok);
}

TEST_F(VerifierAttackTest, RejectsForgedPrunedBoundaries) {
  // Shift a pruned subtree's claimed range away from the query: the digest
  // reconstruction must fail because boundaries are bound into the digest.
  TreeVo bad = CloneVo(vo_);
  bool forged = false;
  std::function<void(VoChild&)> walk = [&](VoChild& child) {
    if (auto* p = std::get_if<VoPruned>(&child)) {
      if (!forged) {
        p->lo += 1;
        forged = true;
      }
    } else if (auto* n = std::get_if<VoNodePtr>(&child)) {
      for (VoChild& c : (*n)->children) walk(c);
    }
  };
  walk(*bad.root);
  ASSERT_TRUE(forged);
  EXPECT_FALSE(VerifyTreeVo(kLb, kUb, bad, tree_->root_digest(), objects_).ok);
}

TEST_F(VerifierAttackTest, RejectsDuplicateResultKeys) {
  std::vector<Object> dup = objects_;
  dup.push_back(dup[0]);
  EXPECT_FALSE(VerifyTreeVo(kLb, kUb, vo_, tree_->root_digest(), dup).ok);
}

TEST_F(VerifierAttackTest, RejectsExtraUnprovenObjects) {
  std::vector<Object> extra = objects_;
  extra.push_back({kUb + 5, "unproven"});
  EXPECT_FALSE(VerifyTreeVo(kLb, kUb, vo_, tree_->root_digest(), extra).ok);
}

TEST_F(VerifierAttackTest, RejectsInvalidQueryRange) {
  EXPECT_FALSE(VerifyTreeVo(10, 5, vo_, tree_->root_digest(), objects_).ok);
}

TEST_F(VerifierAttackTest, RejectsBareEntryRoot) {
  TreeVo bad;
  bad.root = VoEntry{kLb, crypto::ValueHash("x"), false};
  EXPECT_FALSE(VerifyTreeVo(kLb, kUb, bad, tree_->root_digest(), {}).ok);
}

TEST(Verifier, AcceptsEmptyTreeWithEmptyDigest) {
  TreeVo vo;
  vo.empty_tree = true;
  EXPECT_TRUE(VerifyTreeVo(0, 10, vo, crypto::EmptyTreeDigest(), {}).ok);
  EXPECT_FALSE(VerifyTreeVo(0, 10, vo, crypto::ValueHash("x"), {}).ok);
}

}  // namespace
}  // namespace gem2::ads
