// Tests for the crypto substrate: Keccak-256 vectors, incremental hashing,
// the node-digest scheme, and the binary Merkle tree with inclusion proofs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/digest.h"
#include "crypto/keccak.h"
#include "crypto/merkle.h"

namespace gem2::crypto {
namespace {

TEST(Keccak, KnownVectorEmpty) {
  // Ethereum's Keccak-256 of the empty string.
  EXPECT_EQ(ToHex(Keccak256(std::string(""))),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak, KnownVectorAbc) {
  EXPECT_EQ(ToHex(Keccak256(std::string("abc"))),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak, KnownVectorLongerThanRate) {
  // A message longer than the 136-byte rate exercises multi-block absorbing.
  std::string msg(200, 'a');
  Hash digest = Keccak256(msg);
  // Self-consistency with incremental absorption in awkward chunk sizes.
  Keccak256Hasher h;
  h.Update(msg.substr(0, 1));
  h.Update(msg.substr(1, 135));
  h.Update(msg.substr(136));
  EXPECT_EQ(h.Finalize(), digest);
}

TEST(Keccak, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<uint8_t>(i * 7));
  Hash one_shot = Keccak256(data);
  Keccak256Hasher h;
  for (size_t i = 0; i < data.size(); i += 17) {
    size_t n = std::min<size_t>(17, data.size() - i);
    h.Update(data.data() + i, n);
  }
  EXPECT_EQ(h.Finalize(), one_shot);
  EXPECT_EQ(h.absorbed_bytes(), data.size());
}

TEST(Keccak, DistinctInputsDistinctDigests) {
  EXPECT_NE(Keccak256(std::string("a")), Keccak256(std::string("b")));
  EXPECT_NE(Keccak256(std::string("")), Keccak256(std::string("\0", 1)));
}

TEST(Digest, EntryDigestBindsKeyAndValue) {
  Hash v1 = ValueHash("value-1");
  Hash v2 = ValueHash("value-2");
  EXPECT_NE(EntryDigest(1, v1), EntryDigest(2, v1));
  EXPECT_NE(EntryDigest(1, v1), EntryDigest(1, v2));
}

TEST(Digest, WrapDigestBindsBoundaries) {
  Hash content = ValueHash("content");
  EXPECT_NE(WrapDigest(1, 9, content), WrapDigest(1, 10, content));
  EXPECT_NE(WrapDigest(1, 9, content), WrapDigest(2, 9, content));
  EXPECT_NE(WrapDigest(1, 9, content), WrapDigest(1, 9, ValueHash("other")));
}

TEST(Digest, DigestByteCountsMatchActualHashing) {
  // The gas model charges Chash by byte count; the helpers must report the
  // sizes the real computation absorbs.
  Keccak256Hasher h;
  h.UpdateKey(7);
  h.Update(ValueHash("x"));
  EXPECT_EQ(h.absorbed_bytes(), EntryDigestBytes());

  Keccak256Hasher h2;
  h2.UpdateKey(1);
  h2.UpdateKey(2);
  h2.Update(ValueHash("x"));
  EXPECT_EQ(h2.absorbed_bytes(), WrapDigestBytes());

  EXPECT_EQ(ContentDigestBytes(4), 4u * 32u);
}

TEST(Digest, EmptyTreeDigestStable) {
  EXPECT_EQ(EmptyTreeDigest(), EmptyTreeDigest());
  EXPECT_NE(EmptyTreeDigest(), Hash{});
}

class MerkleTreeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleTreeTest, AllProofsVerify) {
  const size_t n = GetParam();
  std::vector<Hash> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Keccak256(std::string("leaf-") + std::to_string(i)));
  }
  BinaryMerkleTree tree(leaves);
  EXPECT_EQ(tree.num_leaves(), n);
  for (size_t i = 0; i < n; ++i) {
    MerkleProof proof = tree.Prove(i);
    EXPECT_EQ(BinaryMerkleTree::RootFromProof(leaves[i], proof), tree.root())
        << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleTreeTest, TamperedLeafFailsProof) {
  const size_t n = GetParam();
  if (n < 2) GTEST_SKIP();
  std::vector<Hash> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Keccak256(std::string("leaf-") + std::to_string(i)));
  }
  BinaryMerkleTree tree(leaves);
  MerkleProof proof = tree.Prove(0);
  Hash forged = Keccak256(std::string("forged"));
  EXPECT_NE(BinaryMerkleTree::RootFromProof(forged, proof), tree.root());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleTreeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 33,
                                           64, 100, 255));

TEST(MerkleTree, EmptyTreeHasCanonicalDigest) {
  BinaryMerkleTree tree({});
  EXPECT_EQ(tree.root(), EmptyTreeDigest());
}

TEST(MerkleTree, RootChangesWithAnyLeaf) {
  std::vector<Hash> leaves;
  for (int i = 0; i < 9; ++i) {
    leaves.push_back(Keccak256(std::to_string(i)));
  }
  Hash original = BinaryMerkleTree::RootOf(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto copy = leaves;
    copy[i] = Keccak256(std::string("tampered"));
    EXPECT_NE(BinaryMerkleTree::RootOf(copy), original) << "leaf " << i;
  }
}

TEST(Bytes, WordRoundTrips) {
  for (uint64_t v : {0ull, 1ull, 255ull, 256ull, 0xffffffffffffffffull}) {
    EXPECT_EQ(Uint64FromWord(WordFromUint64(v)), v);
  }
  for (Key k : {Key{0}, Key{-1}, Key{42}, kKeyMin, kKeyMax}) {
    EXPECT_EQ(KeyFromWord(WordFromKey(k)), k);
  }
}

TEST(Bytes, HexFormatting) {
  Hash h{};
  h[0] = 0xab;
  h[1] = 0x01;
  EXPECT_EQ(ToHex(h).substr(0, 4), "ab01");
  EXPECT_EQ(HexAbbrev(h, 2), "ab01..");
}

}  // namespace
}  // namespace gem2::crypto
