// Journal and SP-recovery tests: deterministic replay reconstructs identical
// on-chain digests and query results; corrupted journals never load silently.
#include <gtest/gtest.h>

#include "core/authenticated_db.h"
#include "workload/workload.h"

namespace gem2::core {
namespace {

DbOptions Options(AdsKind kind) {
  DbOptions o;
  o.kind = kind;
  o.gem2.m = 2;
  o.gem2.smax = 16;
  if (kind == AdsKind::kGem2Star) o.split_points = {250'000, 500'000, 750'000};
  o.env.gas_limit = 1'000'000'000'000ull;
  return o;
}

class JournalReplayTest : public ::testing::TestWithParam<AdsKind> {};

TEST_P(JournalReplayTest, ReplayReconstructsIdenticalState) {
  workload::WorkloadOptions wopts;
  wopts.update_ratio = 0.25;
  wopts.seed = 31;
  workload::WorkloadGenerator gen(wopts);

  AuthenticatedDb original(Options(GetParam()));
  for (int i = 0; i < 250; ++i) {
    workload::Operation op = gen.Next();
    if (op.type == workload::Operation::Type::kInsert ||
        !original.Contains(op.object.key)) {
      original.Insert(op.object);  // fresh key, or revive after a delete
    } else {
      original.Update(op.object);
    }
    if (i % 40 == 17) original.Delete(op.object.key);
  }
  ASSERT_GT(original.journal().size(), 250u);

  // Ship the journal as bytes (SP recovery artifact) and replay it.
  Bytes wire = original.journal().Serialize();
  auto parsed = Journal::Parse(wire);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(*parsed, original.journal());

  std::unique_ptr<AuthenticatedDb> rebuilt =
      AuthenticatedDb::Replay(Options(GetParam()), *parsed);

  EXPECT_EQ(rebuilt->size(), original.size());
  EXPECT_EQ(rebuilt->ChainDigests(), original.ChainDigests());
  rebuilt->CheckConsistency();

  // Authenticated queries against the rebuilt instance match the original.
  VerifiedResult a = original.AuthenticatedRange(0, 1'000'000'000);
  VerifiedResult b = rebuilt->AuthenticatedRange(0, 1'000'000'000);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.objects, b.objects);
  EXPECT_EQ(a.tombstones_filtered, b.tombstones_filtered);
}

INSTANTIATE_TEST_SUITE_P(Kinds, JournalReplayTest,
                         ::testing::Values(AdsKind::kMbTree, AdsKind::kGem2,
                                           AdsKind::kGem2Star),
                         [](const auto& info) {
                           switch (info.param) {
                             case AdsKind::kMbTree:
                               return "MbTree";
                             case AdsKind::kGem2:
                               return "Gem2";
                             case AdsKind::kGem2Star:
                               return "Gem2Star";
                             default:
                               return "Other";
                           }
                         });

TEST(Journal, SerializationRejectsCorruption) {
  Journal journal;
  journal.Record({JournalEntry::Op::kInsert, {1, "hello"}});
  journal.Record({JournalEntry::Op::kDelete, {1, ""}});
  Bytes wire = journal.Serialize();

  EXPECT_FALSE(Journal::Parse({}).has_value());
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(Journal::Parse(truncated).has_value());
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(Journal::Parse(padded).has_value());
  Bytes bad_op = wire;
  bad_op[9 + 0] = 9;  // first entry's op byte
  EXPECT_FALSE(Journal::Parse(bad_op).has_value());
}

TEST(Journal, ParseExDistinguishesChecksumDamageFromStructuralDamage) {
  Journal journal;
  journal.Record({JournalEntry::Op::kInsert, {1, "hello"}});
  journal.Record({JournalEntry::Op::kInsert, {2, "world"}});
  journal.Record({JournalEntry::Op::kDelete, {1, ""}});
  Bytes wire = journal.Serialize();
  ASSERT_EQ(wire[0], 2);  // format v2

  // Bit rot inside the SECOND record's value: structure is intact, only the
  // checksum catches it — and it names the failing record.
  Bytes rotten = wire;
  const size_t record0 = 9 + (1 + 8 + 8 + 5) + 4;  // header + entry 0 + crc
  rotten[record0 + 1 + 8 + 8 + 2] ^= 0x20;         // entry 1, value byte 2
  JournalParseResult rot = Journal::ParseEx(rotten);
  EXPECT_FALSE(rot.journal.has_value());
  EXPECT_EQ(rot.error, JournalParseError::kChecksum);
  EXPECT_EQ(rot.record_index, 1u);

  // Structural damage (truncation) is kMalformed, not kChecksum.
  Bytes truncated(wire.begin(), wire.end() - 2);
  JournalParseResult torn = Journal::ParseEx(truncated);
  EXPECT_FALSE(torn.journal.has_value());
  EXPECT_EQ(torn.error, JournalParseError::kMalformed);

  JournalParseResult clean = Journal::ParseEx(wire);
  ASSERT_TRUE(clean.journal.has_value());
  EXPECT_EQ(clean.error, JournalParseError::kNone);
  EXPECT_EQ(*clean.journal, journal);
}

TEST(Journal, LegacyV1ImagesStillParseForOneRelease) {
  // A pre-upgrade recovery artifact: version byte 1, no per-record CRCs.
  Journal journal;
  journal.Record({JournalEntry::Op::kInsert, {7, "seven"}});
  journal.Record({JournalEntry::Op::kUpdate, {7, "seven!"}});
  Bytes v1;
  v1.push_back(1);
  AppendUint64(&v1, journal.size());
  for (const JournalEntry& e : journal.entries()) {
    AppendJournalEntryBody(&v1, e);
  }

  JournalParseResult parsed = Journal::ParseEx(v1);
  ASSERT_TRUE(parsed.journal.has_value());
  EXPECT_EQ(*parsed.journal, journal);

  // v1 offers no checksum protection, so trailing garbage is still caught
  // structurally, and an unknown version byte is rejected outright.
  Bytes padded = v1;
  padded.push_back(0);
  EXPECT_FALSE(Journal::ParseEx(padded).journal.has_value());
  Bytes v3 = v1;
  v3[0] = 3;
  EXPECT_FALSE(Journal::ParseEx(v3).journal.has_value());
}

TEST(Journal, CorruptedPayloadSurfacesAsDigestDivergence) {
  AuthenticatedDb original(Options(AdsKind::kGem2));
  for (Key k = 1; k <= 30; ++k) original.Insert({k, "v" + std::to_string(k)});

  Journal tampered = original.journal();
  // Forge one payload byte; the journal still parses and replays, but the
  // rebuilt digests no longer match the chain's.
  Journal forged;
  for (size_t i = 0; i < tampered.entries().size(); ++i) {
    JournalEntry e = tampered.entries()[i];
    if (i == 10) e.object.value[0] ^= 1;
    forged.Record(std::move(e));
  }
  auto rebuilt = AuthenticatedDb::Replay(Options(AdsKind::kGem2), forged);
  EXPECT_NE(rebuilt->ChainDigests(), original.ChainDigests());
}

TEST(Journal, ReplayAbortsOnInvalidStream) {
  Journal bad;
  bad.Record({JournalEntry::Op::kUpdate, {42, "no such key"}});
  EXPECT_THROW(AuthenticatedDb::Replay(Options(AdsKind::kGem2), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace gem2::core
