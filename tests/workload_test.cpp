// Workload generator tests: zipfian statistics, determinism, key uniqueness,
// op mixes, quantiles, selectivity-controlled queries, and split points.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/workload.h"

namespace gem2::workload {
namespace {

TEST(Zipfian, RankZeroIsMostFrequent) {
  ZipfianGenerator zipf(1000, 0.8);
  Rng rng(1);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50'000; ++i) ++counts[zipf.Next(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], 50'000 / 100);  // rank 0 has mass >> uniform
  // Tail ranks are rare.
  int tail = 0;
  for (const auto& [rank, c] : counts) {
    if (rank > 900) tail += c;
  }
  EXPECT_LT(tail, 50'000 / 20);
}

TEST(Zipfian, MassSumsToOne) {
  ZipfianGenerator zipf(512, 0.8);
  double total = 0;
  for (uint64_t i = 0; i < 512; ++i) total += zipf.Mass(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(zipf.Mass(0), zipf.Mass(1));
  EXPECT_GT(zipf.Mass(1), zipf.Mass(511));
}

TEST(Zipfian, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfianGenerator(1, 0.8), std::invalid_argument);
  EXPECT_THROW(ZipfianGenerator(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfianGenerator(10, 1.0), std::invalid_argument);
}

TEST(Workload, DeterministicGivenSeed) {
  WorkloadOptions options;
  options.seed = 123;
  WorkloadGenerator a(options);
  WorkloadGenerator b(options);
  for (int i = 0; i < 100; ++i) {
    Operation oa = a.Next();
    Operation ob = b.Next();
    EXPECT_EQ(oa.object.key, ob.object.key);
    EXPECT_EQ(oa.object.value, ob.object.value);
  }
}

TEST(Workload, InsertedKeysAreUnique) {
  WorkloadOptions options;
  options.domain_max = 5'000;  // force collisions in sampling
  WorkloadGenerator gen(options);
  std::set<Key> seen;
  for (int i = 0; i < 3000; ++i) {
    Operation op = gen.Next();
    ASSERT_EQ(op.type, Operation::Type::kInsert);
    EXPECT_TRUE(seen.insert(op.object.key).second);
    EXPECT_GE(op.object.key, options.domain_min);
    EXPECT_LE(op.object.key, options.domain_max);
  }
}

TEST(Workload, UpdateRatioApproximatelyHonored) {
  WorkloadOptions options;
  options.update_ratio = 0.3;
  WorkloadGenerator gen(options);
  int updates = 0;
  for (int i = 0; i < 5000; ++i) {
    if (gen.Next().type == Operation::Type::kUpdate) ++updates;
  }
  EXPECT_NEAR(static_cast<double>(updates) / 5000.0, 0.3, 0.03);
}

TEST(Workload, UpdatesTargetExistingKeys) {
  WorkloadOptions options;
  options.update_ratio = 0.5;
  WorkloadGenerator gen(options);
  std::set<Key> inserted;
  for (int i = 0; i < 2000; ++i) {
    Operation op = gen.Next();
    if (op.type == Operation::Type::kInsert) {
      inserted.insert(op.object.key);
    } else {
      EXPECT_TRUE(inserted.count(op.object.key));
    }
  }
}

TEST(Workload, ValuesHaveConfiguredSize) {
  WorkloadOptions options;
  options.value_size = 100;  // the paper's payload size
  WorkloadGenerator gen(options);
  EXPECT_EQ(gen.Next().object.value.size(), 100u);
}

TEST(Workload, SplitPointsAscendingAndQuantileLike) {
  WorkloadOptions options;
  WorkloadGenerator gen(options);
  std::vector<Key> splits = gen.SplitPoints(100);
  ASSERT_EQ(splits.size(), 99u);
  for (size_t i = 1; i < splits.size(); ++i) EXPECT_LT(splits[i - 1], splits[i]);
  // Uniform distribution: split points are near equally spaced.
  const double span = static_cast<double>(options.domain_max - options.domain_min);
  EXPECT_NEAR(static_cast<double>(splits[49]), span / 2.0, span * 0.02);
}

TEST(Workload, ZipfianSplitPointsFrontLoaded) {
  WorkloadOptions options;
  options.distribution = KeyDistribution::kZipfian;
  WorkloadGenerator gen(options);
  std::vector<Key> splits = gen.SplitPoints(10);
  ASSERT_GE(splits.size(), 2u);
  // Skewed mass near the low keys: the median split sits far below the
  // domain midpoint.
  EXPECT_LT(splits[splits.size() / 2], options.domain_max / 4);
}

class SelectivityTest : public ::testing::TestWithParam<double> {};

TEST_P(SelectivityTest, QueriesCoverRequestedMass) {
  const double selectivity = GetParam();
  for (KeyDistribution dist :
       {KeyDistribution::kUniform, KeyDistribution::kZipfian}) {
    WorkloadOptions options;
    options.distribution = dist;
    options.seed = 9;
    WorkloadGenerator gen(options);
    // Materialize a large sample of keys, then check queries hit roughly
    // selectivity * sample.
    std::vector<Key> keys;
    for (int i = 0; i < 20'000; ++i) keys.push_back(gen.Next().object.key);
    std::sort(keys.begin(), keys.end());

    double total_fraction = 0;
    const int kQueries = 40;
    for (int q = 0; q < kQueries; ++q) {
      RangeQuerySpec spec = gen.NextQuery(selectivity);
      ASSERT_LE(spec.lb, spec.ub);
      auto lo = std::lower_bound(keys.begin(), keys.end(), spec.lb);
      auto hi = std::upper_bound(keys.begin(), keys.end(), spec.ub);
      total_fraction +=
          static_cast<double>(hi - lo) / static_cast<double>(keys.size());
    }
    const double avg = total_fraction / kQueries;
    EXPECT_NEAR(avg, selectivity, selectivity * 0.5 + 0.005)
        << "dist=" << static_cast<int>(dist);
  }
}

INSTANTIATE_TEST_SUITE_P(Selectivities, SelectivityTest,
                         ::testing::Values(0.01, 0.02, 0.05, 0.10));

}  // namespace
}  // namespace gem2::workload
