// Randomized equivalence suite for the simulator fast path. Every off-meter
// throughput mechanism (incremental state commitment, pipelined sealing,
// lazy SP digest refresh, batched Keccak) claims to be observationally
// invisible: same gas, same sealed chain, same digests, bit for bit. This
// suite drives seeded workloads — including out-of-gas aborts and mid-stream
// contract registration — through the fast and reference configurations and
// asserts exactly that. Run under ASan/TSan in CI (GEM2_SANITIZE).
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "ads/static_tree.h"
#include "chain/environment.h"
#include "core/authenticated_db.h"
#include "crypto/digest.h"
#include "crypto/merkle.h"
#include "mbtree/contract.h"
#include "mbtree/mbtree.h"

namespace gem2 {
namespace {

using core::AdsKind;
using core::AuthenticatedDb;
using core::DbOptions;

// ---------------------------------------------------------------------------
// Batched primitives: the 8-way Keccak paths must equal their scalar shapes.
// ---------------------------------------------------------------------------

ads::EntryList RandomEntries(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  ads::EntryList entries;
  entries.reserve(n);
  Key k = 0;
  for (size_t i = 0; i < n; ++i) {
    k += 1 + static_cast<Key>(rng() % 1000);
    Hash vh{};
    for (auto& b : vh) b = static_cast<uint8_t>(rng());
    entries.push_back({k, vh});
  }
  return entries;
}

TEST(BatchedKeccakEquivalence, CanonicalRootMatchesMaterializedTree) {
  for (int fanout : {2, 3, 4, 5, 8, 16}) {  // > 4 exercises the multi-block
                                            // scalar fallback in the batcher
    for (size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 17u, 64u, 257u, 1000u}) {
      const ads::EntryList entries = RandomEntries(n, 1000 * fanout + n);
      const Hash expected = ads::StaticTree(entries, fanout).root_digest();
      EXPECT_EQ(ads::CanonicalRootDigest(entries, fanout), expected)
          << "fanout=" << fanout << " n=" << n;
      ads::LeafDigestCache cache;
      // Twice through the same cache: cold (all misses, batched) and warm
      // (all hits) must both reproduce the scalar digest.
      EXPECT_EQ(ads::CanonicalRootDigest(entries, fanout, nullptr, &cache),
                expected);
      EXPECT_EQ(ads::CanonicalRootDigest(entries, fanout, nullptr, &cache),
                expected);
    }
  }
}

TEST(BatchedKeccakEquivalence, MerkleRootOfMatchesConstructor) {
  std::mt19937_64 rng(7);
  std::vector<Hash> leaves;
  for (size_t n = 0; n <= 40; ++n) {
    EXPECT_EQ(crypto::BinaryMerkleTree::RootOf(leaves),
              crypto::BinaryMerkleTree(leaves).root())
        << "n=" << n;
    Hash h{};
    for (auto& b : h) b = static_cast<uint8_t>(rng());
    leaves.push_back(h);
  }
}

// ---------------------------------------------------------------------------
// Lazy SP MbTree refresh: deferred digest materialization must be invisible.
// ---------------------------------------------------------------------------

TEST(LazyRefreshEquivalence, DeferredAndEagerMbTreesAgree) {
  std::mt19937_64 rng(11);
  mbtree::MbTree lazy(4);
  mbtree::MbTree eager(4);
  Key next = 1;
  for (int round = 0; round < 200; ++round) {
    const int op = static_cast<int>(rng() % 3);
    if (op == 0) {
      const Hash vh = crypto::ValueHash("v" + std::to_string(next));
      lazy.Insert(next, vh);
      eager.Insert(next, vh);
      ++next;
    } else if (op == 1) {
      ads::EntryList bulk;
      const size_t count = 1 + rng() % 16;
      for (size_t i = 0; i < count; ++i, ++next) {
        bulk.push_back({next, crypto::ValueHash("b" + std::to_string(next))});
      }
      lazy.BulkInsert(bulk);
      eager.BulkInsert(bulk);
    } else if (next > 1) {
      const Key victim = 1 + static_cast<Key>(rng() % (next - 1));
      const Hash vh = crypto::ValueHash("u" + std::to_string(round));
      lazy.Update(victim, vh);
      eager.Update(victim, vh);
    }
    // The eager twin observes its root after every mutation, forcing an
    // immediate refresh; the lazy twin accumulates stale paths.
    (void)eager.root_digest();
  }
  EXPECT_EQ(lazy.root_digest(), eager.root_digest());
  lazy.CheckInvariants();
  eager.CheckInvariants();

  ads::EntryList lazy_hits, eager_hits;
  const ads::TreeVo lazy_vo = lazy.RangeQuery(1, next, &lazy_hits);
  const ads::TreeVo eager_vo = eager.RangeQuery(1, next, &eager_hits);
  EXPECT_EQ(lazy_hits.size(), eager_hits.size());
  (void)lazy_vo;
  (void)eager_vo;
  EXPECT_EQ(lazy.AllEntries(), eager.AllEntries());
}

// ---------------------------------------------------------------------------
// Whole-chain equivalence across environment configurations.
// ---------------------------------------------------------------------------

struct EnvConfig {
  bool incremental;
  bool pipelined;
};

DbOptions SmallOptions(AdsKind kind, chain::StateCommitment commitment,
                       EnvConfig cfg, gas::Gas gas_limit) {
  DbOptions o;
  o.kind = kind;
  o.gem2.m = 3;
  o.gem2.smax = 32;
  o.env.state_commitment = commitment;
  o.env.gas_limit = gas_limit;
  o.env.txs_per_block = 7;  // deliberately odd: exercises partial tail blocks
  o.env.incremental_commitment = cfg.incremental;
  o.env.pipeline_sealing = cfg.pipelined;
  if (kind == AdsKind::kGem2Star) o.split_points = {5000};
  return o;
}

/// Runs a seeded insert/update/delete mix and returns the per-block header
/// digests plus total gas — the complete observable outcome of the chain.
std::pair<std::vector<Hash>, uint64_t> RunChain(AdsKind kind,
                                                chain::StateCommitment commitment,
                                                EnvConfig cfg,
                                                gas::Gas gas_limit = 1'000'000'000'000ull) {
  AuthenticatedDb db(SmallOptions(kind, commitment, cfg, gas_limit));
  std::mt19937_64 rng(99);
  std::vector<Key> live;
  Key next = 1;
  for (int i = 0; i < 300; ++i) {
    const int op = static_cast<int>(rng() % 10);
    if (op < 7 || live.empty()) {
      next += 1 + static_cast<Key>(rng() % 1000);
      if (db.Insert({next, "v" + std::to_string(i)}).ok) live.push_back(next);
    } else if (op < 9) {
      db.Update({live[rng() % live.size()], "u" + std::to_string(i)});
    } else {
      const size_t victim = rng() % live.size();
      db.Delete(live[victim]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
  db.environment().SealBlock();
  db.CheckConsistency();
  std::vector<Hash> headers;
  for (const chain::Block& b : db.environment().blockchain().blocks()) {
    headers.push_back(b.header.Digest());
  }
  return {headers, db.environment().total_gas_used()};
}

class CommitmentModes
    : public ::testing::TestWithParam<chain::StateCommitment> {};

TEST_P(CommitmentModes, IncrementalMatchesFromScratchRebuild) {
  for (AdsKind kind : {AdsKind::kGem2, AdsKind::kMbTree}) {
    const auto fast = RunChain(kind, GetParam(), {true, true});
    const auto compat = RunChain(kind, GetParam(), {false, false});
    EXPECT_EQ(fast.first, compat.first) << "chains diverged";
    EXPECT_EQ(fast.second, compat.second) << "gas diverged";
  }
}

TEST_P(CommitmentModes, PipelinedSealingIsByteIdentical) {
  const auto piped = RunChain(AdsKind::kGem2, GetParam(), {true, true});
  const auto serial = RunChain(AdsKind::kGem2, GetParam(), {true, false});
  EXPECT_EQ(piped.first, serial.first);
  EXPECT_EQ(piped.second, serial.second);
}

/// Inserts under a tight gas limit until a transaction aborts, then seals.
/// Returns (per-block header digests, total gas, saw an abort).
std::tuple<std::vector<Hash>, uint64_t, bool> RunAbortingChain(
    bool incremental, chain::StateCommitment commitment) {
  chain::EnvironmentOptions opts;
  opts.state_commitment = commitment;
  opts.gas_limit = 400'000;  // enough for early inserts, not for deep paths
  opts.txs_per_block = 3;
  opts.incremental_commitment = incremental;
  chain::Environment env(opts);
  mbtree::MbTreeContract contract("tight");
  env.Register(&contract);
  bool aborted = false;
  const Hash root_before_abort = env.CurrentStateRoot();
  Hash root_snapshot = root_before_abort;
  for (Key k = 1; k <= 4000 && !aborted; ++k) {
    root_snapshot = env.CurrentStateRoot();
    const chain::TxReceipt r =
        env.Execute(contract, "insert", [&contract, k](gas::Meter& m) {
          contract.Insert(k * 3, crypto::ValueHash(std::to_string(k)), m);
        });
    aborted = !r.ok;
  }
  if (aborted) {
    // The aborted transaction must leave no trace in the state commitment.
    EXPECT_EQ(env.CurrentStateRoot(), root_snapshot);
  }
  env.SealBlock();
  std::vector<Hash> headers;
  for (const chain::Block& b : env.blockchain().blocks()) {
    headers.push_back(b.header.Digest());
  }
  return {headers, env.total_gas_used(), aborted};
}

TEST_P(CommitmentModes, OutOfGasAbortsPreserveEquivalence) {
  const auto fast = RunAbortingChain(true, GetParam());
  const auto compat = RunAbortingChain(false, GetParam());
  EXPECT_TRUE(std::get<2>(fast)) << "workload never ran out of gas";
  EXPECT_EQ(std::get<0>(fast), std::get<0>(compat));
  EXPECT_EQ(std::get<1>(fast), std::get<1>(compat));
}

TEST_P(CommitmentModes, CrosscheckModeAcceptsIncrementalRoots) {
  // GEM2_STATE_CROSSCHECK makes the environment re-derive every root from
  // scratch and throw on mismatch — the strongest internal check, run here
  // over a small mixed workload.
  ::setenv("GEM2_STATE_CROSSCHECK", "1", 1);
  const auto checked = RunChain(AdsKind::kGem2, GetParam(), {true, true});
  ::unsetenv("GEM2_STATE_CROSSCHECK");
  const auto plain = RunChain(AdsKind::kGem2, GetParam(), {true, true});
  EXPECT_EQ(checked.first, plain.first);
  EXPECT_EQ(checked.second, plain.second);
}

INSTANTIATE_TEST_SUITE_P(
    BothCommitments, CommitmentModes,
    ::testing::Values(chain::StateCommitment::kBinaryMerkle,
                      chain::StateCommitment::kPatriciaTrie),
    [](const auto& info) {
      return info.param == chain::StateCommitment::kBinaryMerkle ? "BinaryMerkle"
                                                                 : "PatriciaTrie";
    });

// ---------------------------------------------------------------------------
// Mid-stream contract registration (layout change forces a commitment
// rebuild) and the ledger fast path.
// ---------------------------------------------------------------------------

std::vector<Hash> RunTwoContractChain(bool incremental,
                                      chain::StateCommitment commitment) {
  chain::EnvironmentOptions opts;
  opts.state_commitment = commitment;
  opts.gas_limit = 1'000'000'000'000ull;
  opts.txs_per_block = 5;
  opts.incremental_commitment = incremental;
  chain::Environment env(opts);
  mbtree::MbTreeContract first("alpha");
  env.Register(&first);
  auto insert = [&env](mbtree::MbTreeContract& c, Key k) {
    env.Execute(c, "insert", [&c, k](gas::Meter& m) {
      c.Insert(k, crypto::ValueHash("x" + std::to_string(k)), m);
    });
  };
  for (Key k = 1; k <= 23; ++k) insert(first, k);

  // New contract appears mid-stream: the state layout changes, which the
  // incremental committer must detect (full rebuild) without diverging.
  mbtree::MbTreeContract second("beta");
  env.Register(&second);
  for (Key k = 1; k <= 23; ++k) {
    insert(second, k * 2);
    insert(first, 100 + k);
  }
  env.SealBlock();

  // Ledger fast path: the environment gathers digests from the ledger, which
  // must agree with the contract's authoritative AuthenticatedDigests().
  for (const mbtree::MbTreeContract* c : {&first, &second}) {
    EXPECT_NE(c->digest_ledger(), nullptr);
    if (c->digest_ledger() == nullptr) continue;
    EXPECT_EQ(c->digest_ledger()->Snapshot(), c->AuthenticatedDigests());
  }

  std::vector<Hash> headers;
  for (const chain::Block& b : env.blockchain().blocks()) {
    headers.push_back(b.header.Digest());
  }
  return headers;
}

TEST(RedeployEquivalence, MidStreamRegistrationMatchesRebuild) {
  for (chain::StateCommitment commitment :
       {chain::StateCommitment::kBinaryMerkle,
        chain::StateCommitment::kPatriciaTrie}) {
    EXPECT_EQ(RunTwoContractChain(true, commitment),
              RunTwoContractChain(false, commitment));
  }
}

// ---------------------------------------------------------------------------
// Ledger snapshot == authoritative digests for every contract type.
// ---------------------------------------------------------------------------

class AllKindsLedger : public ::testing::TestWithParam<AdsKind> {};

TEST_P(AllKindsLedger, SnapshotMatchesAuthenticatedDigests) {
  DbOptions o = SmallOptions(GetParam(), chain::StateCommitment::kBinaryMerkle,
                             {true, true}, 1'000'000'000'000ull);
  AuthenticatedDb db(o);
  std::mt19937_64 rng(5);
  std::vector<Key> live;
  for (int i = 0; i < 150; ++i) {
    const Key k = static_cast<Key>(1 + rng() % 100'000);
    if (db.Insert({k, "v" + std::to_string(i)}).ok) live.push_back(k);
    if (i % 5 == 4 && !live.empty()) {
      db.Update({live[rng() % live.size()], "u" + std::to_string(i)});
    }
  }
  db.CheckConsistency();
  // The committed view (ledger snapshot) must equal what the contract would
  // recompute from its trees — the invariant the ledger fast path rests on.
  chain::AuthenticatedState state =
      db.environment().ReadAuthenticatedState(AuthenticatedDb::kContractName);
  EXPECT_TRUE(chain::Environment::VerifyAuthenticatedState(state));
}

INSTANTIATE_TEST_SUITE_P(FiveKinds, AllKindsLedger,
                         ::testing::Values(AdsKind::kMbTree, AdsKind::kSmbTree,
                                           AdsKind::kLsm, AdsKind::kGem2,
                                           AdsKind::kGem2Star),
                         [](const auto& info) {
                           switch (info.param) {
                             case AdsKind::kMbTree: return "MbTree";
                             case AdsKind::kSmbTree: return "SmbTree";
                             case AdsKind::kLsm: return "Lsm";
                             case AdsKind::kGem2: return "Gem2";
                             case AdsKind::kGem2Star: return "Gem2Star";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace gem2
