// Telemetry tests: span nesting and exact gas attribution (per-span deltas
// sum to the receipt's gas_used), metrics determinism, exporter output
// validity (Chrome trace JSON, CSV, BENCH_*.json), and the zero-perturbation
// guarantee (instrumentation never changes gas accounting).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <thread>
#include <sstream>
#include <string>
#include <vector>

#include "chain/contract.h"
#include "chain/environment.h"
#include "core/authenticated_db.h"
#include "telemetry/exporters.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "workload/workload.h"

namespace gem2::telemetry {
namespace {

/// Installs a collector sink for the test's lifetime and guarantees the
/// global tracer is left clean (tests in this binary share it).
class TracerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "built with GEM2_TELEMETRY_DISABLED";
    Tracer::Global().ClearSinks();
    collector_ = std::make_shared<CollectorSink>();
    Tracer::Global().AddSink(collector_);
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override { Tracer::Global().ClearSinks(); }

  std::shared_ptr<CollectorSink> collector_;
};

/// Contract with a two-level phase structure, for span-tree assertions.
class PhasedContract : public chain::Contract {
 public:
  PhasedContract() : chain::Contract("phased") {}

  void Run(gas::Meter& meter) {
    TELEMETRY_SPAN("phase.outer");
    storage().StoreUint({1, 0}, 1, meter);  // sstore: 20,000
    {
      TELEMETRY_SPAN("phase.inner_a");
      meter.ChargeSload(3);  // 600
    }
    {
      TELEMETRY_SPAN("phase.inner_b");
      meter.ChargeHash(32);  // 30 + 6 = 36
    }
    meter.ChargeMem(10);  // 30, charged to outer's self time
  }

  std::vector<chain::DigestEntry> AuthenticatedDigests() const override {
    return {{"phased", Hash{}}};
  }
};

TEST_F(TracerFixture, SpansNestAndRecordInCloseOrder) {
  {
    Span outer("outer");
    {
      Span inner("inner");
    }
  }
  std::vector<SpanRecord> spans = collector_->TakeSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[1].duration_ns, spans[0].duration_ns);
}

TEST_F(TracerFixture, SpanGasDeltasSumExactlyToReceiptGasUsed) {
  chain::Environment env({.capture_tx_trace = true});
  PhasedContract contract;
  env.Register(&contract);
  chain::TxReceipt r =
      env.Execute(contract, "run", [&](gas::Meter& m) { contract.Run(m); });
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.trace.size(), 4u);  // inner_a, inner_b, phase.outer, tx.run

  // The root span is last (spans close inside-out) and covers the whole
  // transaction: its inclusive gas IS the receipt's gas_used.
  const SpanRecord& root = r.trace.back();
  EXPECT_EQ(root.name, "tx.run");
  EXPECT_EQ(root.gas_total(), r.gas_used);
  EXPECT_EQ(root.gas, r.breakdown);

  // inclusive == self + sum(direct children), exactly, for every span.
  std::map<uint64_t, gas::Gas> children_gas;
  for (const SpanRecord& s : r.trace) children_gas[s.parent_id] += s.gas_total();
  for (const SpanRecord& s : r.trace) {
    EXPECT_EQ(s.gas_total(), s.self_gas + children_gas[s.id]) << s.name;
  }

  // Phase attribution matches the contract's charges (Table I costs).
  std::map<std::string, const SpanRecord*> by_name;
  for (const SpanRecord& s : r.trace) by_name[s.name] = &s;
  EXPECT_EQ(by_name.at("phase.inner_a")->gas_total(), 600u);
  EXPECT_EQ(by_name.at("phase.inner_b")->gas_total(), 36u);
  EXPECT_EQ(by_name.at("phase.outer")->self_gas, 20'000u + 30u);
  EXPECT_EQ(by_name.at("phase.outer")->gas_total(), 20'000u + 600u + 36u + 30u);
  EXPECT_EQ(by_name.at("tx.run")->self_gas, 0u);
}

TEST_F(TracerFixture, FailedTransactionTraceStillExplainsGas) {
  chain::Environment env({.gas_limit = 30'000, .capture_tx_trace = true});
  PhasedContract contract;
  env.Register(&contract);
  chain::TxReceipt r = env.Execute(contract, "explode", [&](gas::Meter& m) {
    TELEMETRY_SPAN("phase.writes");
    for (uint64_t i = 0; i < 100; ++i) contract.storage().StoreUint({2, i}, 1, m);
  });
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.breakdown.total(), r.gas_used);
  ASSERT_FALSE(r.trace.empty());
  const SpanRecord& root = r.trace.back();
  EXPECT_EQ(root.name, "tx.explode");
  // Even on abort the root span accounts every unit the meter charged.
  EXPECT_EQ(root.gas_total(), r.gas_used);
}

TEST_F(TracerFixture, EndToEndInsertTraceCoversAdsPhases) {
  core::DbOptions options;
  options.kind = core::AdsKind::kGem2;
  options.env.capture_tx_trace = true;
  core::AuthenticatedDb db(options);
  bool saw_gem2_insert = false;
  for (uint64_t i = 0; i < 50; ++i) {
    chain::TxReceipt r = db.Insert({1000 + i * 7, "v" + std::to_string(i)});
    ASSERT_TRUE(r.ok);
    ASSERT_FALSE(r.trace.empty());
    EXPECT_EQ(r.trace.back().gas_total(), r.gas_used) << "insert " << i;
    for (const SpanRecord& s : r.trace) {
      if (s.name == "gem2.insert") saw_gem2_insert = true;
    }
  }
  EXPECT_TRUE(saw_gem2_insert);
}

TEST_F(TracerFixture, TelemetryNeverPerturbsGasAccounting) {
  // Identical workload, once with the tracer enabled (null sink) and once
  // fully disabled: receipts must be bit-identical.
  auto run = [](bool traced) {
    if (!traced) Tracer::Global().ClearSinks();
    core::DbOptions options;
    options.kind = core::AdsKind::kGem2;
    options.env.capture_tx_trace = traced;
    core::AuthenticatedDb db(options);
    std::vector<gas::Gas> gas;
    workload::WorkloadOptions w;
    w.seed = 7;
    workload::WorkloadGenerator gen(w);
    for (int i = 0; i < 200; ++i) {
      gas.push_back(db.Insert(gen.Next().object).gas_used);
    }
    return gas;
  };
  Tracer::Global().ClearSinks();
  Tracer::Global().AddSink(std::make_shared<NullSink>());
  std::vector<gas::Gas> traced = run(true);
  std::vector<gas::Gas> untraced = run(false);
  EXPECT_EQ(traced, untraced);
}

TEST_F(TracerFixture, MetricsDeterministicAcrossIdenticalRuns) {
  auto run = [] {
    MetricsRegistry::Global().Reset();
    core::DbOptions options;
    options.kind = core::AdsKind::kMbTree;
    core::AuthenticatedDb db(options);
    workload::WorkloadOptions w;
    w.seed = 11;
    workload::WorkloadGenerator gen(w);
    for (int i = 0; i < 100; ++i) db.Insert(gen.Next().object);
    db.AuthenticatedRange(0, 1'000'000);
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    // Drop wall-clock histograms: only gas/count metrics are deterministic.
    std::erase_if(snap.histograms, [](const MetricsSnapshot::HistogramStats& h) {
      return h.name.find("_ns") != std::string::npos;
    });
    return snap;
  };
  MetricsSnapshot a = run();
  MetricsSnapshot b = run();
  EXPECT_TRUE(a == b);
  // The instrumented paths actually populated the registry.
  auto counter = [&](const std::string& name) {
    for (const auto& [n, v] : a.counters) {
      if (n == name) return v;
    }
    return uint64_t{0};
  };
  EXPECT_EQ(counter("tx.count"), 100u);
  EXPECT_EQ(counter("query.count"), 1u);
  EXPECT_EQ(counter("verify.count"), 1u);
  EXPECT_EQ(counter("verify.failed"), 0u);
  EXPECT_GT(counter("gas.used.sstore"), 0u);
  // Everything the observer mirrored equals everything the receipts summed.
  uint64_t tx_gas_sum = 0;
  for (const auto& h : a.histograms) {
    if (h.name == "tx.gas") tx_gas_sum = h.sum;
  }
  EXPECT_EQ(counter("gas.used.sload") + counter("gas.used.sstore") +
                counter("gas.used.supdate") + counter("gas.used.mem") +
                counter("gas.used.hash") + counter("gas.used.intrinsic"),
            tx_gas_sum);
}

TEST_F(TracerFixture, MeterObserverMirrorsEveryCharge) {
  MeterMetricsObserver observer;
  gas::Meter meter;
  meter.set_observer(&observer);
  meter.ChargeSload(2);
  meter.ChargeSstore(1);
  meter.ChargeHash(64);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::map<std::string, uint64_t> counters(snap.counters.begin(),
                                           snap.counters.end());
  EXPECT_EQ(counters.at("gas.used.sload"), 400u);
  EXPECT_EQ(counters.at("gas.ops.sload"), 1u);  // one ChargeSload call
  EXPECT_EQ(counters.at("gas.used.sstore"), 20'000u);
  EXPECT_EQ(counters.at("gas.used.hash"), 30u + 12u);
}

TEST(Histogram, PowerOfTwoBuckets) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(7);
  h.Observe(8);
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(3), 1u);  // 4..7
  EXPECT_EQ(h.bucket(4), 1u);  // 8..15
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, QuantilesExactWhileWithinReservoirCapacity) {
  Histogram h;
  // 1..1000 in a scrambled order: reservoir keeps ALL of them (<= capacity),
  // so the quantiles are exact order statistics of the full data.
  for (uint64_t i = 0; i < 1000; ++i) h.Observe((i * 617) % 1000 + 1);
  ASSERT_LE(h.count(), Histogram::kReservoirCapacity);
  QuantileSummary q = h.Quantiles();
  EXPECT_EQ(q.samples, 1000u);
  EXPECT_DOUBLE_EQ(q.p50, 500.5);     // midpoint of 500 and 501
  EXPECT_DOUBLE_EQ(q.p99, 990.01);    // rank 0.99 * 999 between 990 and 991
  EXPECT_DOUBLE_EQ(q.p999, 999.001);  // between 999 and 1000
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(Histogram().Quantile(0.5), 0.0);  // empty -> 0
}

TEST(Histogram, ReservoirOverflowStaysWithinObservedRange) {
  Histogram h;
  // 3x capacity: Algorithm R keeps an unbiased sample; every surviving
  // sample is a real observation, so quantiles stay inside [min, max] and
  // ordered.
  const uint64_t n = 3 * Histogram::kReservoirCapacity;
  for (uint64_t i = 0; i < n; ++i) h.Observe(i % 10'000);
  QuantileSummary q = h.Quantiles();
  EXPECT_EQ(q.samples, uint64_t{Histogram::kReservoirCapacity});
  EXPECT_GE(q.p50, static_cast<double>(h.min()));
  EXPECT_LE(q.p50, q.p99);
  EXPECT_LE(q.p99, q.p999);
  EXPECT_LE(q.p999, static_cast<double>(h.max()));
}

TEST(Histogram, ResetDuringConcurrentObserveNeverTearsSnapshots) {
  // Satellite regression: a Reset() racing Observe() calls used to let a
  // snapshot pair a count read before the reset with a sum read after it
  // (count >> sum). The generation counter makes registry reads skip or
  // retry across resets. Every observation is 1 and Observe bumps count
  // before sum, so a read that does NOT span a reset always satisfies
  // sum + 1 >= count (the +1 is one in-flight observation of the single
  // writer); a torn read would miss by thousands.
  MetricsRegistry registry;
  Histogram& h = registry.histogram("race");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) h.Observe(1);
  });
  std::thread resetter([&] {
    for (int i = 0; i < 200; ++i) h.Reset();
  });
  for (int i = 0; i < 500; ++i) {
    MetricsSnapshot snap = registry.Snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const auto& stats = snap.histograms[0];
    EXPECT_GE(stats.sum + 1, stats.count);
    EXPECT_LE(stats.quantiles.samples, Histogram::kReservoirCapacity);
  }
  resetter.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(h.generation() % 2, 0u) << "reset left the generation odd";
  // Quiescent: the final snapshot is exactly coherent.
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.histograms[0].count, snap.histograms[0].sum);
}

TEST(IndexedMetrics, FamiliesCacheAndRouteOutOfRangeToOverflow) {
  MetricsRegistry registry;
  IndexedCounters counters(registry, "fam", 3);
  EXPECT_EQ(counters.size(), 3u);
  counters.at(0).Add(1);
  counters.at(2).Add(5);
  counters.at(99).Add(7);  // out of range -> overflow, not a new entry
  EXPECT_EQ(registry.counter("fam.0").value(), 1u);
  EXPECT_EQ(registry.counter("fam.2").value(), 5u);
  EXPECT_EQ(registry.counter("fam.overflow").value(), 7u);

  IndexedHistograms hists(registry, "hfam", 2);
  hists.at(1).Observe(4);
  hists.at(50).Observe(9);
  EXPECT_EQ(registry.histogram("hfam.1").count(), 1u);
  EXPECT_EQ(registry.histogram("hfam.overflow").count(), 1u);
}

TEST(IndexedMetrics, ConstructionClampsToMaxIndex) {
  // Satellite regression: a shard/index count beyond the bound used to mint
  // one registry entry per index, growing the registry without limit. Now
  // construction clamps and the tail shares ".overflow".
  MetricsRegistry registry;
  IndexedCounters counters(registry, "big", 10'000, /*max_index=*/8);
  EXPECT_EQ(counters.size(), 8u);
  counters.at(7).Add(1);
  counters.at(8).Add(2);     // first clamped index
  counters.at(9'999).Add(3);  // far out of range
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.size(), 9u);  // big.0 .. big.7 + big.overflow
  EXPECT_EQ(registry.counter("big.7").value(), 1u);
  EXPECT_EQ(registry.counter("big.overflow").value(), 5u);
}

// --- JSON ---------------------------------------------------------------------

TEST(Json, RoundTripsAndValidates) {
  JsonObject obj;
  obj.emplace_back("name", "a\"b\\c\n\t");
  obj.emplace_back("n", uint64_t{18'446'744'073'709'551'615ull});
  obj.emplace_back("x", 1.5);
  obj.emplace_back("flag", true);
  obj.emplace_back("nothing", nullptr);
  obj.emplace_back("list", JsonArray{JsonValue(1), JsonValue("two")});
  std::string text = JsonValue(obj).Dump();
  ASSERT_TRUE(JsonValid(text));
  auto parsed = JsonParse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("name")->string(), "a\"b\\c\n\t");
  EXPECT_EQ(parsed->Find("list")->array().size(), 2u);
  EXPECT_TRUE(parsed->Find("flag"));

  EXPECT_FALSE(JsonValid("{"));
  EXPECT_FALSE(JsonValid("[1,]"));
  EXPECT_FALSE(JsonValid("{\"a\":1} trailing"));
  EXPECT_FALSE(JsonValid("\"unterminated"));
  EXPECT_TRUE(JsonValid("[]"));
  EXPECT_TRUE(JsonValid("[{\"u\":\"\\u0041\"}]"));
}

// --- Exporters ----------------------------------------------------------------

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ExporterFixture : public TracerFixture {
 protected:
  std::string TmpPath(const char* name) {
    return ::testing::TempDir() + "/gem2_telemetry_" + name;
  }
};

TEST_F(ExporterFixture, ChromeTraceIsParseValidJson) {
  const std::string path = TmpPath("trace.json");
  std::remove(path.c_str());
  auto sink = std::make_shared<ChromeTraceSink>(path);
  Tracer::Global().AddSink(sink);
  {
    Span outer("outer, with \"quotes\"");
    Span inner("inner");
  }
  Tracer::Global().EmitInstant({"block.seal", Tracer::NowNs(), 0, {{"height", 1}}});
  Tracer::Global().ClearSinks();  // flushes

  std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty());
  auto parsed = JsonParse(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->array().size(), 3u);  // 2 spans + 1 instant
  std::remove(path.c_str());
}

TEST_F(ExporterFixture, CsvHasHeaderAndOneRowPerSpan) {
  const std::string path = TmpPath("spans.csv");
  std::remove(path.c_str());
  auto sink = std::make_shared<CsvSink>(path);
  Tracer::Global().AddSink(sink);
  {
    Span a("alpha");
  }
  {
    Span b("beta,with,commas");
  }
  Tracer::Global().ClearSinks();

  std::istringstream in(ReadFile(path));
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "id,parent_id,depth,thread,name,start_ns,duration_ns,gas_total,"
            "self_gas,sload,sstore,supdate,mem,hash,intrinsic");
  EXPECT_NE(lines[1].find("alpha"), std::string::npos);
  EXPECT_NE(lines[2].find("\"beta,with,commas\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ExporterFixture, BenchReporterWritesAndAppendsParseValidArrays) {
  const std::string dir = ::testing::TempDir();
  BenchRecord rec;
  rec.bench = "figtest";
  rec.name = "FigTest/GEM2-tree/uniform/N:10";
  rec.ads = "GEM2-tree";
  rec.dist = "uniform";
  rec.dataset_size = 10;
  rec.ops = 10;
  rec.gas_total = 1234.0;
  rec.gas_mean = 123.4;
  rec.breakdown.sstore = 1000;
  rec.extra["update_ratio"] = 0.4;

  const std::string path = dir + "/BENCH_figtest.json";
  std::remove(path.c_str());
  BenchReporter::Global().Record(rec);
  std::vector<std::string> written = BenchReporter::Global().WriteFiles(dir);
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], path);
  auto first = JsonParse(ReadFile(path));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first->is_array());
  ASSERT_EQ(first->array().size(), 1u);
  const JsonValue& row = first->array()[0];
  EXPECT_EQ(row.Find("bench")->string(), "figtest");
  EXPECT_EQ(row.Find("ops")->number(), 10.0);
  EXPECT_EQ(row.Find("breakdown")->Find("sstore")->number(), 1000.0);
  EXPECT_EQ(row.Find("extra")->Find("update_ratio")->number(), 0.4);

  // A second run appends; the file stays one parse-valid JSON array.
  BenchReporter::Global().Record(rec);
  BenchReporter::Global().WriteFiles(dir);
  auto second = JsonParse(ReadFile(path));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->array().size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gem2::telemetry
