// Shard-scaling benchmark: scatter-gather query throughput of the sharded
// multi-contract RangeStore versus shard count, over one fixed dataset.
//
// For S in {1, 2, 4, 8} a ShardedDb is preloaded with the same uniform
// workload (quantile partition bounds), plus an unsharded AuthenticatedDb
// reference row (S = 0). Queries scatter across the overlapping shards on
// the global ThreadPool, so throughput should rise from S=1 toward the
// machine's core count; S=1 vs the unsharded row isolates the composite
// protocol's own overhead. Every response is client-verified once up front
// (seam completeness + per-shard VOs) before the timed loop.
//
// Emits BENCH_shard.json. Reported per row: qps, sp_ms_per_query,
// speedup_vs_s1 (sharded rows), verified results per query, and the core
// count the run had (`cores`) — the CI scaling floor only applies on
// multi-core runners.
#include <chrono>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "telemetry/metrics.h"

namespace gem2::bench {
namespace {

using Clock = std::chrono::steady_clock;

double g_qps_s1 = 0;  // registration order runs S=1 first

void ShardScaling(benchmark::State& state, const std::string& name,
                  size_t shards, uint64_t n, double selectivity) {
  const uint64_t queries = EnvScale("GEM2_SHARD_QUERIES", 200);

  WorkloadGenerator gen;
  auto store = BuildStore(AdsKind::kGem2, KeyDistribution::kUniform, n, shards,
                          &gen);
  core::SpPoolScope pool(*store, &common::ThreadPool::Global());

  // Correctness gate: the scatter-gather answer must verify end-to-end
  // (through the wire codec) before we bother timing it.
  {
    workload::RangeQuerySpec probe = gen.NextQuery(selectivity);
    core::VerifiedResult vr = store->VerifyWire(
        probe.lb, probe.ub, store->QueryWire(probe.lb, probe.ub));
    if (!vr.ok) {
      state.SkipWithError(("verification failed: " + vr.error).c_str());
      return;
    }
  }

  double seconds = 0;
  uint64_t results = 0;
  telemetry::Histogram latency;  // per-query ns, for exact quantiles
  for (auto _ : state) {
    for (uint64_t q = 0; q < queries; ++q) {
      workload::RangeQuerySpec spec = gen.NextQuery(selectivity);
      const auto t0 = Clock::now();
      core::QueryResponse response = store->Query(spec.lb, spec.ub);
      const auto t1 = Clock::now();
      latency.Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
      seconds += std::chrono::duration<double>(t1 - t0).count();
      for (const auto& slice : response.slices)
        for (const auto& tree : slice.response.trees) results += tree.objects.size();
      for (const auto& tree : response.trees) results += tree.objects.size();
      benchmark::DoNotOptimize(response.lb);
    }
  }

  const double q = static_cast<double>(queries);
  const double qps = seconds > 0 ? q / seconds : 0;
  if (shards == 1) g_qps_s1 = qps;

  BenchRun run("shard", name, store->BackendName(), "uniform", n);
  run.Extra("shards", static_cast<double>(shards));
  run.Extra("selectivity", selectivity);
  run.Extra("queries", q);
  run.Extra("qps", qps);
  run.Extra("sp_ms_per_query", seconds * 1000.0 / q);
  run.Extra("results_per_query", static_cast<double>(results) / q);
  run.Extra("cores", static_cast<double>(std::thread::hardware_concurrency()));
  run.Extra("pool_threads",
            static_cast<double>(common::ThreadPool::Global().num_threads()));
  const telemetry::QuantileSummary lat_q = latency.Quantiles();
  run.Extra("query_p50_ns", lat_q.p50);
  run.Extra("query_p99_ns", lat_q.p99);
  run.Extra("query_p999_ns", lat_q.p999);
  if (shards >= 1 && g_qps_s1 > 0) run.Extra("speedup_vs_s1", qps / g_qps_s1);
  run.Finish();

  state.counters["qps"] = benchmark::Counter(qps);
  state.counters["sp_ms_per_query"] = benchmark::Counter(seconds * 1000.0 / q);
}

void RegisterAll() {
  const uint64_t n = EnvScale("GEM2_SHARD_N", 20'000);
  const double selectivity = 0.05;
  // S=0 is the unsharded AuthenticatedDb reference; S=1 must run before the
  // larger shard counts (speedup_vs_s1 anchors on it).
  for (size_t shards : {size_t{0}, size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    std::string name = shards == 0
                           ? "Shard/unsharded/N:" + std::to_string(n)
                           : "Shard/S:" + std::to_string(shards) +
                                 "/N:" + std::to_string(n);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [name, shards, n, selectivity](benchmark::State& s) {
          ShardScaling(s, name, shards, n, selectivity);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gem2::bench::EmitBenchJson();
  benchmark::Shutdown();
  return 0;
}
