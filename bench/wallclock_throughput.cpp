// Wall-clock benchmarks for the concurrent SP engine and the incremental
// digest machinery (this repo's perf additions on top of the paper's gas
// experiments):
//   - Keccak kernel throughput (MB/s, ns per permutation);
//   - parallel vs serial SP StaticTree bulk-load (speedup on the pool);
//   - parallel QueryBatch vs serial Query throughput (ops/sec);
//   - Keccak permutations per incremental update vs full rebuild.
// Emits BENCH_throughput.json; the speedup / savings factors are the
// acceptance numbers tracked in EXPERIMENTS.md.
#include <algorithm>
#include <chrono>
#include <vector>

#include "ads/static_tree.h"
#include "bench_common.h"
#include "common/thread_pool.h"
#include "core/query_engine.h"
#include "crypto/digest.h"
#include "crypto/keccak.h"
#include "telemetry/metrics.h"

namespace gem2::bench {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

ads::EntryList MakeEntries(uint64_t n, uint64_t seed) {
  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform, seed));
  ads::EntryList entries;
  entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const Object obj = gen.Next().object;
    entries.push_back({obj.key, crypto::ValueHash(obj.value)});
  }
  std::sort(entries.begin(), entries.end(), ads::EntryKeyLess);
  return entries;
}

void KeccakKernel(benchmark::State& state) {
  const uint64_t mib = EnvScale("GEM2_KECCAK_MIB", 8);
  Bytes data(mib << 20);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i * 131);

  double seconds = 0;
  uint64_t permutations = 0;
  for (auto _ : state) {
    const uint64_t p0 = crypto::KeccakPermutationCount();
    const auto t0 = Clock::now();
    Hash digest = crypto::Keccak256(data);
    const auto t1 = Clock::now();
    benchmark::DoNotOptimize(digest);
    seconds += Seconds(t0, t1);
    permutations += crypto::KeccakPermutationCount() - p0;
  }

  const double mb = static_cast<double>(data.size()) / 1e6 *
                    static_cast<double>(state.iterations());
  BenchRun run("throughput", "Throughput/Keccak/kernel", "-", "-", data.size());
  run.Extra("mb_per_s", mb / seconds);
  run.Extra("ns_per_permutation",
            seconds * 1e9 / static_cast<double>(permutations));
  run.Finish();
  state.counters["mb_per_s"] = benchmark::Counter(mb / seconds);
}

/// Serial vs pool-parallel StaticTree construction over the same sorted run.
/// This is the SP's bulk-load path: every SMB-tree / partition materialization
/// goes through this constructor.
void BulkLoad(benchmark::State& state) {
  const uint64_t n = EnvScale("GEM2_BULKLOAD_N", 200'000);
  ads::EntryList entries = MakeEntries(n, 42);
  common::ThreadPool& pool = common::ThreadPool::Global();

  double serial_s = 0;
  double parallel_s = 0;
  for (auto _ : state) {
    ads::EntryList serial_in = entries;
    const auto t0 = Clock::now();
    ads::StaticTree serial(std::move(serial_in), 4, nullptr);
    const auto t1 = Clock::now();
    ads::EntryList parallel_in = entries;
    const auto t2 = Clock::now();
    ads::StaticTree parallel(std::move(parallel_in), 4, &pool);
    const auto t3 = Clock::now();
    if (serial.root_digest() != parallel.root_digest()) {
      state.SkipWithError("parallel bulk-load root diverged from serial");
      return;
    }
    serial_s += Seconds(t0, t1);
    parallel_s += Seconds(t2, t3);
  }

  BenchRun run("throughput", "Throughput/BulkLoad/StaticTree", "SMB-tree",
               "uniform", n);
  run.Extra("threads", static_cast<double>(pool.num_threads() + 1));
  run.Extra("serial_ms", serial_s * 1000.0);
  run.Extra("parallel_ms", parallel_s * 1000.0);
  run.Extra("speedup", serial_s / parallel_s);
  run.Finish();
  state.counters["speedup"] = benchmark::Counter(serial_s / parallel_s);
}

/// Serial Query loop vs one QueryBatch over the same ranges and snapshot.
void QueryThroughput(benchmark::State& state, const char* ads, AdsKind kind) {
  const uint64_t n = EnvScale("GEM2_QUERY_N", 50'000);
  const uint64_t queries = EnvScale("GEM2_BATCH_QUERIES", 200);

  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
  auto db = std::make_unique<AuthenticatedDb>(MakeDbOptions(kind, gen));
  core::SpQueryEngine engine(db.get());
  // Ingest through the engine so its write-latency reservoir sees every op.
  telemetry::MetricsRegistry::Global().histogram("sp_engine.write_ns").Reset();
  for (uint64_t i = 0; i < n; ++i) engine.Insert(gen.Next().object);

  std::vector<core::KeyRange> ranges;
  ranges.reserve(queries);
  for (uint64_t q = 0; q < queries; ++q) {
    workload::RangeQuerySpec spec = gen.NextQuery(0.01);
    ranges.emplace_back(spec.lb, spec.ub);
  }
  // Warm the SP caches so both sides measure query serving, not tree builds.
  benchmark::DoNotOptimize(engine.Query(ranges[0].first, ranges[0].second));
  telemetry::MetricsRegistry::Global().histogram("sp_engine.query_ns").Reset();

  double serial_s = 0;
  double parallel_s = 0;
  for (auto _ : state) {
    const auto t0 = Clock::now();
    for (const core::KeyRange& r : ranges) {
      core::QueryResponse response = engine.Query(r.first, r.second);
      benchmark::DoNotOptimize(response);
    }
    const auto t1 = Clock::now();
    std::vector<core::QueryResponse> batch = engine.QueryBatch(ranges);
    const auto t2 = Clock::now();
    if (batch.size() != ranges.size()) {
      state.SkipWithError("batch result count mismatch");
      return;
    }
    serial_s += Seconds(t0, t1);
    parallel_s += Seconds(t1, t2);
  }

  const double total =
      static_cast<double>(queries) * static_cast<double>(state.iterations());
  BenchRun run("throughput", std::string("Throughput/QueryBatch/") + ads, ads,
               "uniform", n);
  run.Extra("threads",
            static_cast<double>(engine.pool().num_threads() + 1));
  run.Extra("queries", static_cast<double>(queries));
  run.Extra("serial_qps", total / serial_s);
  run.Extra("parallel_qps", total / parallel_s);
  run.Extra("speedup", serial_s / parallel_s);
  // Exact per-op latency quantiles, cut from the engine's fixed-memory
  // reservoirs over the ops this run actually issued.
  auto& registry = telemetry::MetricsRegistry::Global();
  const telemetry::QuantileSummary query_q =
      registry.histogram("sp_engine.query_ns").Quantiles();
  run.Extra("query_p50_ns", query_q.p50);
  run.Extra("query_p99_ns", query_q.p99);
  run.Extra("query_p999_ns", query_q.p999);
  const telemetry::QuantileSummary write_q =
      registry.histogram("sp_engine.write_ns").Quantiles();
  run.Extra("insert_p50_ns", write_q.p50);
  run.Extra("insert_p99_ns", write_q.p99);
  run.Extra("insert_p999_ns", write_q.p999);
  run.Finish();
  state.counters["serial_qps"] = benchmark::Counter(total / serial_s);
  state.counters["parallel_qps"] = benchmark::Counter(total / parallel_s);
  state.counters["speedup"] = benchmark::Counter(serial_s / parallel_s);
}

/// Keccak permutations per incremental UpdateValueHash vs a full rebuild of
/// the same tree — the dirty-tracking acceptance number (target: >= 5x).
void IncrementalDigest(benchmark::State& state) {
  const uint64_t n = EnvScale("GEM2_INCR_N", 50'000);
  const uint64_t updates = EnvScale("GEM2_INCR_UPDATES", 200);
  ads::EntryList entries = MakeEntries(n, 7);

  double rebuild_perms = 0;
  double incr_perms = 0;
  for (auto _ : state) {
    ads::EntryList in = entries;
    const uint64_t p0 = crypto::KeccakPermutationCount();
    ads::StaticTree tree(std::move(in), 4);
    const uint64_t p1 = crypto::KeccakPermutationCount();
    Rng rng(1234);
    for (uint64_t u = 0; u < updates; ++u) {
      const Key key =
          tree.entries()[rng.Uniform(0, tree.entries().size() - 1)].key;
      Hash fresh = crypto::ValueHash("payload-" + std::to_string(u));
      if (!tree.UpdateValueHash(key, fresh)) {
        state.SkipWithError("incremental update missed an existing key");
        return;
      }
    }
    const uint64_t p2 = crypto::KeccakPermutationCount();
    rebuild_perms += static_cast<double>(p1 - p0);
    incr_perms += static_cast<double>(p2 - p1);
  }

  const double per_update =
      incr_perms / static_cast<double>(updates) /
      static_cast<double>(state.iterations());
  const double per_rebuild =
      rebuild_perms / static_cast<double>(state.iterations());
  BenchRun run("throughput", "Throughput/IncrementalDigest/StaticTree",
               "SMB-tree", "uniform", n);
  run.Extra("rebuild_permutations", per_rebuild);
  run.Extra("permutations_per_update", per_update);
  run.Extra("savings_factor", per_rebuild / per_update);
  run.Finish();
  state.counters["permutations_per_update"] = benchmark::Counter(per_update);
  state.counters["savings_factor"] =
      benchmark::Counter(per_rebuild / per_update);
}

void RegisterAll() {
  benchmark::RegisterBenchmark("Throughput/Keccak/kernel", KeccakKernel)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Throughput/BulkLoad/StaticTree", BulkLoad)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  const struct {
    AdsKind kind;
    const char* name;
  } kinds[] = {
      {AdsKind::kGem2, "GEM2-tree"},
      {AdsKind::kGem2Star, "GEM2x-tree"},
  };
  for (const auto& k : kinds) {
    std::string name = std::string("Throughput/QueryBatch/") + k.name;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [ads = k.name, kind = k.kind](benchmark::State& s) {
          QueryThroughput(s, ads, kind);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("Throughput/IncrementalDigest/StaticTree",
                               IncrementalDigest)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gem2::bench::EmitBenchJson();
  benchmark::Shutdown();
  return 0;
}
