// Recovery-path throughput for the durable SP store. Two questions:
//
//   1. What does a checkpoint buy? Time DurableSpStore::Open() on a journal
//      of N ops with no checkpoint (full replay) versus a checkpoint near the
//      head plus a ~1% journal tail, at N in {1e4, 1e5, 1e6}. The engine's
//      pitch is that checkpoint+tail beats full replay at N=1e6.
//   2. What does the fsync policy cost at append time? Sustained append MB/s
//      through DurableJournal on the real filesystem per policy.
//
// Emits BENCH_recovery.json (baseline: bench/baselines/BENCH_recovery.json).
// Scale knobs: GEM2_RECOVERY_MAX_N (default 1e6), GEM2_APPEND_N.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/failpoint_sweep.h"
#include "store/durable_journal.h"
#include "store/durable_store.h"
#include "store/sp_object_store.h"
#include "store/vfs.h"

namespace gem2::bench {
namespace {

constexpr char kStoreDir[] = "/sp";

/// Builds the on-"disk" state of an SP that applied `n` ops and then crashed:
/// plain journal for full replay, or a checkpoint at 99% with a journal tail.
void BuildDisk(store::MemVfs* vfs, const std::vector<core::JournalEntry>& ops,
               bool checkpointed) {
  store::SpObjectStore state;
  store::StoreOptions options;
  options.journal.fsync_policy = store::FsyncPolicy::kNever;  // build fast
  store::RecoveryReport report;
  auto store = store::DurableSpStore::Open(vfs, kStoreDir, &state, options,
                                           &report);
  const size_t checkpoint_at = ops.size() - ops.size() / 100 - 1;
  for (size_t i = 0; i < ops.size(); ++i) {
    store->Apply(ops[i]);
    if (checkpointed && i == checkpoint_at) {
      std::string error;
      store->Checkpoint(&error);
    }
  }
  store->Sync();
}

void RecoveryBench(benchmark::State& state, const std::string& name,
                   uint64_t n, bool checkpointed) {
  const std::vector<core::JournalEntry> ops = fault::OwnerStream(7, n);
  store::MemVfs vfs;
  BuildDisk(&vfs, ops, checkpointed);

  double recover_ms = 0;
  store::RecoveryReport report;
  for (auto _ : state) {
    store::SpObjectStore recovered;
    const auto t0 = std::chrono::steady_clock::now();
    auto reopened = store::DurableSpStore::Open(&vfs, kStoreDir, &recovered,
                                                store::StoreOptions{}, &report);
    recover_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    if (reopened == nullptr) state.SkipWithError(report.error.c_str());
    benchmark::DoNotOptimize(recovered.size());
  }

  BenchRun run("recovery", name, checkpointed ? "ckpt+tail" : "full-replay",
               "uniform", n);
  run.Extra("recover_ms", recover_ms);
  run.Extra("replayed_ops", static_cast<double>(report.replayed_ops));
  run.Extra("used_checkpoint", report.used_checkpoint ? 1 : 0);
  run.Extra("checkpoint_seqno", static_cast<double>(report.checkpoint_seqno));
  run.Extra("ops_per_s", recover_ms > 0 ? n * 1000.0 / recover_ms : 0);
  run.Finish();
  state.counters["recover_ms"] = benchmark::Counter(recover_ms);
}

void AppendBench(benchmark::State& state, const std::string& name,
                 store::FsyncPolicy policy, uint64_t n) {
  char tmpl[] = "/tmp/gem2_recovery_bench_XXXXXX";
  char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  const std::string journal_dir = std::string(dir) + "/journal";
  const std::vector<core::JournalEntry> ops = fault::OwnerStream(9, n);

  store::PosixVfs vfs;
  double seconds = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    store::JournalOptions options;
    options.fsync_policy = policy;
    std::string error;
    auto journal = store::DurableJournal::Open(&vfs, journal_dir, 0, options,
                                               &error);
    if (journal == nullptr) {
      state.SkipWithError(error.c_str());
      break;
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (const core::JournalEntry& entry : ops) journal->Append(entry);
    journal->Sync();
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
    bytes = 0;
    if (auto names = vfs.ListDir(journal_dir); names.has_value()) {
      for (const std::string& file : *names) {
        bytes += vfs.FileSize(journal_dir + "/" + file).value_or(0);
        vfs.RemoveFile(journal_dir + "/" + file);
      }
    }
  }
  rmdir(journal_dir.c_str());
  rmdir(dir);

  const double mb = static_cast<double>(bytes) / (1 << 20);
  BenchRun run("recovery", name, store::FsyncPolicyName(policy), "uniform", n);
  run.Extra("append_mb_per_s", seconds > 0 ? mb / seconds : 0);
  run.Extra("appends_per_s", seconds > 0 ? n / seconds : 0);
  run.Extra("journal_bytes", static_cast<double>(bytes));
  run.Finish();
  state.counters["mb_per_s"] = benchmark::Counter(seconds > 0 ? mb / seconds : 0);
}

void RegisterAll() {
  const uint64_t max_n = EnvScale("GEM2_RECOVERY_MAX_N", 1'000'000);
  for (const uint64_t n : {uint64_t{10'000}, uint64_t{100'000},
                           uint64_t{1'000'000}}) {
    if (n > max_n) continue;
    for (const bool ckpt : {false, true}) {
      const std::string name = std::string("Recovery/") +
                               (ckpt ? "ckpt_tail" : "full_replay") +
                               "/N:" + std::to_string(n);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [name, n, ckpt](benchmark::State& s) { RecoveryBench(s, name, n, ckpt); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  const uint64_t append_n = EnvScale("GEM2_APPEND_N", 20'000);
  for (const store::FsyncPolicy policy :
       {store::FsyncPolicy::kNever, store::FsyncPolicy::kBatch,
        store::FsyncPolicy::kEveryRecord}) {
    // fsync-per-record is orders of magnitude slower per op; scale its op
    // count down so the series finishes in comparable wall time.
    const uint64_t n = policy == store::FsyncPolicy::kEveryRecord
                           ? append_n / 10 + 1
                           : append_n;
    const std::string name = std::string("Append/") +
                             store::FsyncPolicyName(policy) +
                             "/N:" + std::to_string(n);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [name, policy, n](benchmark::State& s) { AppendBench(s, name, policy, n); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gem2::bench::EmitBenchJson();
  benchmark::Shutdown();
  return 0;
}
