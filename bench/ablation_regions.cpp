// Ablation: the GEM2*-tree upper-level region count (paper uses 100). Sweeps
// the number of regions and reports both maintenance gas and query-side cost,
// exposing the trade-off Section VI-A describes: more regions mean more
// (and smaller) SMB-trees and more key-local bulk inserts — cheaper
// maintenance — but more lower-level trees for a query to touch.
#include <chrono>

#include "bench_common.h"

namespace gem2::bench {
namespace {

void Gem2StarVsRegions(benchmark::State& state, size_t regions) {
  const uint64_t n = EnvScale("GEM2_ABLATION_N", 30'000);
  const uint64_t queries = 25;
  uint64_t total_gas = 0;
  double sp_seconds = 0;
  uint64_t vo_bytes = 0;
  for (auto _ : state) {
    WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
    DbOptions options = MakeDbOptions(AdsKind::kGem2Star, gen, regions);
    AuthenticatedDb db(options);
    for (uint64_t i = 0; i < n; ++i) {
      total_gas += db.Insert(gen.Next().object).gas_used;
    }
    for (uint64_t q = 0; q < queries; ++q) {
      workload::RangeQuerySpec spec = gen.NextQuery(0.05);
      auto t0 = std::chrono::steady_clock::now();
      core::QueryResponse response = db.Query(spec.lb, spec.ub);
      sp_seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                        .count();
      vo_bytes += core::VoSpBytes(response);
    }
  }
  state.counters["gas_per_op"] =
      benchmark::Counter(static_cast<double>(total_gas) / static_cast<double>(n));
  state.counters["sp_ms_per_query"] =
      benchmark::Counter(sp_seconds * 1000.0 / static_cast<double>(queries));
  state.counters["vo_sp_kb_per_query"] = benchmark::Counter(
      static_cast<double>(vo_bytes) / static_cast<double>(queries) / 1024.0);
}

void RegisterAll() {
  for (size_t regions : {1, 10, 50, 100, 200, 400}) {
    benchmark::RegisterBenchmark(
        ("AblationRegions/GEM2x-tree/R:" + std::to_string(regions)).c_str(),
        [regions](benchmark::State& s) { Gem2StarVsRegions(s, regions); })
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
