/// \file bench_common.h
/// Shared plumbing for the paper-reproduction benchmarks: database builders,
/// workload wiring, and environment-variable scale knobs.
///
/// Every bench binary prints one series per benchmark name, e.g.
///   Fig7/GEM2-tree/uniform/N:10000  ... gas_per_op=1.23e5
/// matching the corresponding paper table or figure (see EXPERIMENTS.md).
#ifndef GEM2_BENCH_BENCH_COMMON_H_
#define GEM2_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/authenticated_db.h"
#include "core/range_store.h"
#include "shard/sharded_db.h"
#include "telemetry/exporters.h"
#include "workload/workload.h"

namespace gem2::bench {

using core::AdsKind;
using core::AuthenticatedDb;
using core::DbOptions;
using workload::KeyDistribution;
using workload::Operation;
using workload::WorkloadGenerator;
using workload::WorkloadOptions;

/// Reads a positive integer scale knob from the environment.
inline uint64_t EnvScale(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

inline const char* DistName(KeyDistribution d) {
  return d == KeyDistribution::kUniform ? "uniform" : "zipfian";
}

inline WorkloadOptions MakeWorkload(KeyDistribution dist, uint64_t seed = 42,
                                    double update_ratio = 0.0) {
  WorkloadOptions w;
  w.distribution = dist;
  w.zipf_constant = 0.8;
  w.domain_max = 1'000'000'000;
  w.update_ratio = update_ratio;
  w.seed = seed;
  return w;
}

/// DbOptions with the paper's Section VII-A parameters. The gas limit is
/// lifted so gas can be *measured* past the 8M block limit (the gasLimit
/// feasibility experiment enforces the real limit separately).
inline DbOptions MakeDbOptions(AdsKind kind, const WorkloadGenerator& gen,
                               size_t regions = 100) {
  DbOptions o;
  o.kind = kind;
  o.gem2.m = 8;
  o.gem2.smax = 2048;
  o.gem2.fanout = 4;
  o.lsm.level0_capacity = 8;
  o.lsm.fanout = 4;
  o.env.gas_limit = 1'000'000'000'000'000ull;
  o.env.txs_per_block = 1024;
  if (kind == AdsKind::kGem2Star) {
    o.split_points = gen.SplitPoints(regions);
  }
  return o;
}

/// Builds a database preloaded with `n` fresh objects.
inline std::unique_ptr<AuthenticatedDb> BuildDb(AdsKind kind, KeyDistribution dist,
                                                uint64_t n,
                                                WorkloadGenerator* gen_out = nullptr,
                                                size_t regions = 100) {
  WorkloadGenerator gen(MakeWorkload(dist));
  auto db = std::make_unique<AuthenticatedDb>(MakeDbOptions(kind, gen, regions));
  for (uint64_t i = 0; i < n; ++i) {
    db->Insert(gen.Next().object);
  }
  if (gen_out != nullptr) *gen_out = std::move(gen);
  return db;
}

/// Builds a RangeStore preloaded with `n` fresh objects: `shards == 0` gives
/// the single-contract AuthenticatedDb, `shards >= 1` a ShardedDb
/// partitioned at the workload distribution's quantile bounds (so a one-shard
/// sharded store measures the composite protocol's own overhead). Benchmarks
/// drive the role-separated interface either way.
inline std::unique_ptr<core::RangeStore> BuildStore(
    AdsKind kind, KeyDistribution dist, uint64_t n, size_t shards,
    WorkloadGenerator* gen_out = nullptr, size_t regions = 100) {
  WorkloadGenerator gen(MakeWorkload(dist));
  std::unique_ptr<core::RangeStore> store;
  if (shards == 0) {
    store = std::make_unique<AuthenticatedDb>(MakeDbOptions(kind, gen, regions));
  } else {
    shard::ShardOptions o;
    o.base = MakeDbOptions(kind, gen, regions);
    o.bounds = gen.ShardBounds(shards);
    store = std::make_unique<shard::ShardedDb>(std::move(o));
  }
  for (uint64_t i = 0; i < n; ++i) store->Insert(gen.Next().object);
  if (gen_out != nullptr) *gen_out = std::move(gen);
  return store;
}

/// Accumulates one benchmark data point (receipts + wall clock) and reports
/// it to the global telemetry::BenchReporter. Create it at the top of a
/// benchmark body, Count() every receipt, and Finish() once done; the main()
/// then calls EmitBenchJson() to write BENCH_<bench>.json files.
class BenchRun {
 public:
  BenchRun(std::string bench, std::string name, std::string ads, std::string dist,
           uint64_t dataset_size)
      : start_(std::chrono::steady_clock::now()) {
    record_.bench = std::move(bench);
    record_.name = std::move(name);
    record_.ads = std::move(ads);
    record_.dist = std::move(dist);
    record_.dataset_size = dataset_size;
  }

  void Count(const chain::TxReceipt& receipt) {
    ++record_.ops;
    record_.gas_total += static_cast<double>(receipt.gas_used);
    record_.breakdown += receipt.breakdown;
  }

  void Extra(const std::string& key, double value) { record_.extra[key] = value; }

  void Finish() {
    record_.wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    record_.gas_mean =
        record_.ops > 0 ? record_.gas_total / static_cast<double>(record_.ops) : 0;
    telemetry::BenchReporter::Global().Record(record_);
  }

 private:
  telemetry::BenchRecord record_;
  std::chrono::steady_clock::time_point start_;
};

/// Writes every recorded data point to BENCH_<bench>.json (under
/// $GEM2_BENCH_JSON_DIR or the working directory) and says where they went.
/// Call after benchmark::RunSpecifiedBenchmarks().
inline void EmitBenchJson() {
  for (const std::string& path : telemetry::BenchReporter::Global().WriteFiles()) {
    printf("bench-json: %s\n", path.c_str());
  }
}

}  // namespace gem2::bench

#endif  // GEM2_BENCH_BENCH_COMMON_H_
