/// \file bench_common.h
/// Shared plumbing for the paper-reproduction benchmarks: database builders,
/// workload wiring, and environment-variable scale knobs.
///
/// Every bench binary prints one series per benchmark name, e.g.
///   Fig7/GEM2-tree/uniform/N:10000  ... gas_per_op=1.23e5
/// matching the corresponding paper table or figure (see EXPERIMENTS.md).
#ifndef GEM2_BENCH_BENCH_COMMON_H_
#define GEM2_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "core/authenticated_db.h"
#include "workload/workload.h"

namespace gem2::bench {

using core::AdsKind;
using core::AuthenticatedDb;
using core::DbOptions;
using workload::KeyDistribution;
using workload::Operation;
using workload::WorkloadGenerator;
using workload::WorkloadOptions;

/// Reads a positive integer scale knob from the environment.
inline uint64_t EnvScale(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

inline const char* DistName(KeyDistribution d) {
  return d == KeyDistribution::kUniform ? "uniform" : "zipfian";
}

inline WorkloadOptions MakeWorkload(KeyDistribution dist, uint64_t seed = 42,
                                    double update_ratio = 0.0) {
  WorkloadOptions w;
  w.distribution = dist;
  w.zipf_constant = 0.8;
  w.domain_max = 1'000'000'000;
  w.update_ratio = update_ratio;
  w.seed = seed;
  return w;
}

/// DbOptions with the paper's Section VII-A parameters. The gas limit is
/// lifted so gas can be *measured* past the 8M block limit (the gasLimit
/// feasibility experiment enforces the real limit separately).
inline DbOptions MakeDbOptions(AdsKind kind, const WorkloadGenerator& gen,
                               size_t regions = 100) {
  DbOptions o;
  o.kind = kind;
  o.gem2.m = 8;
  o.gem2.smax = 2048;
  o.gem2.fanout = 4;
  o.lsm.level0_capacity = 8;
  o.lsm.fanout = 4;
  o.env.gas_limit = 1'000'000'000'000'000ull;
  o.env.txs_per_block = 1024;
  if (kind == AdsKind::kGem2Star) {
    o.split_points = gen.SplitPoints(regions);
  }
  return o;
}

/// Builds a database preloaded with `n` fresh objects.
inline std::unique_ptr<AuthenticatedDb> BuildDb(AdsKind kind, KeyDistribution dist,
                                                uint64_t n,
                                                WorkloadGenerator* gen_out = nullptr,
                                                size_t regions = 100) {
  WorkloadGenerator gen(MakeWorkload(dist));
  auto db = std::make_unique<AuthenticatedDb>(MakeDbOptions(kind, gen, regions));
  for (uint64_t i = 0; i < n; ++i) {
    db->Insert(gen.Next().object);
  }
  if (gen_out != nullptr) *gen_out = std::move(gen);
  return db;
}

}  // namespace gem2::bench

#endif  // GEM2_BENCH_BENCH_COMMON_H_
