// Reproduces paper Fig. 7: average gas consumption per insert vs database
// size, for the MB-tree baseline, GEM2-tree, GEM2*-tree, and the LSM-tree
// comparator, under uniform and zipfian key distributions.
//
// Expected shape (paper Section VII-B1):
//   - GEM2 and GEM2* consume several times less gas than the MB-tree
//     (up to ~4x), with GEM2* always below GEM2;
//   - the LSM-tree is the most expensive and is only practical for small
//     databases (its merges blow past the block gasLimit; see
//     gaslimit_feasibility in the bench suite).
//
// Default sizes are scaled down from the paper's 10^3..10^8 (simulator, not a
// testbed); extend with GEM2_FIG7_MAX_N=1000000 etc.
#include "bench_common.h"

namespace gem2::bench {
namespace {

void GasVsDbSize(benchmark::State& state, const std::string& name,
                 const char* ads, AdsKind kind, KeyDistribution dist,
                 uint64_t n) {
  uint64_t total_gas = 0;
  uint64_t ops = 0;
  BenchRun run("fig7", name, ads, DistName(dist), n);
  for (auto _ : state) {
    WorkloadGenerator gen(MakeWorkload(dist));
    AuthenticatedDb db(MakeDbOptions(kind, gen));
    for (uint64_t i = 0; i < n; ++i) {
      chain::TxReceipt r = db.Insert(gen.Next().object);
      run.Count(r);
      total_gas += r.gas_used;
      ++ops;
    }
  }
  run.Finish();
  state.counters["gas_per_op"] =
      benchmark::Counter(static_cast<double>(total_gas) / static_cast<double>(ops));
  state.counters["total_gas"] = benchmark::Counter(static_cast<double>(total_gas));
}

void RegisterAll() {
  const uint64_t max_n = EnvScale("GEM2_FIG7_MAX_N", 100'000);
  const uint64_t lsm_max_n = EnvScale("GEM2_FIG7_LSM_MAX_N", 10'000);

  const struct {
    AdsKind kind;
    const char* name;
  } kinds[] = {
      {AdsKind::kMbTree, "MB-tree"},
      {AdsKind::kGem2, "GEM2-tree"},
      {AdsKind::kGem2Star, "GEM2x-tree"},
      {AdsKind::kLsm, "LSM-tree"},
  };

  for (KeyDistribution dist :
       {KeyDistribution::kUniform, KeyDistribution::kZipfian}) {
    for (const auto& k : kinds) {
      for (uint64_t n = 1000; n <= max_n; n *= 10) {
        if (k.kind == AdsKind::kLsm && n > lsm_max_n) continue;
        std::string name = std::string("Fig7/") + k.name + "/" + DistName(dist) +
                           "/N:" + std::to_string(n);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [name, ads = k.name, kind = k.kind, dist, n](benchmark::State& s) {
              GasVsDbSize(s, name, ads, kind, dist, n);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gem2::bench::EmitBenchJson();
  benchmark::Shutdown();
  return 0;
}
