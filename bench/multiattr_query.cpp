// Multi-attribute boolean query bench: SP execute + client verify throughput
// for AND/OR QuerySpecs over a K-attribute MultiAttrDb, the wire savings of
// server-side aggregates (boundary structure only, no result payloads), and
// the spec-level forgery sweep.
//
// The forgery sweep is the CI security gate: every SpecMutationOp forgery
// (conjunct swap/drop/duplicate, range shift, aggregate-boundary tamper, spec
// echo rewrite, inner-VO mutation) must be rejected by ParseSpecResponse or
// VerifySpecFor. `forgery_rejection` in BENCH_multiattr.json must be exactly
// 1.0 — bench-smoke fails the build otherwise.
//
// Emits BENCH_multiattr.json. Reported: qps_execute, qps_verify,
// bytes_per_query, agg_bytes_per_query, agg_bytes_reduction, and the sweep
// counters (forgeries_attempted, forgery_rejection, rejected_parse/verify).
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/query_spec.h"
#include "fault/adversary.h"
#include "common/random.h"
#include "multiattr/multiattr_db.h"

namespace gem2::bench {
namespace {

using Clock = std::chrono::steady_clock;
using core::AggregateKind;
using core::BoolOp;
using core::Predicate;
using core::PredicateKind;
using core::QuerySpec;
using multiattr::MultiAttrDb;
using multiattr::MultiAttrOptions;
using multiattr::MultiAttrRecord;

constexpr uint32_t kNumAttrs = 3;
constexpr Key kAttrDomain = 10'000;  // attribute values in [-domain, domain]

std::unique_ptr<MultiAttrDb> BuildMultiAttr(uint64_t n, uint64_t seed) {
  MultiAttrOptions options;
  options.base.kind = AdsKind::kGem2;
  options.base.gem2.m = 4;
  options.base.gem2.smax = 256;
  options.base.env.gas_limit = 1'000'000'000'000'000ull;
  options.num_attrs = kNumAttrs;
  options.id_bits = 24;
  auto db = std::make_unique<MultiAttrDb>(std::move(options));
  Rng rng(seed);
  for (uint64_t i = 0; i < n; ++i) {
    MultiAttrRecord record;
    record.id = static_cast<int64_t>(i);
    for (uint32_t k = 0; k < kNumAttrs; ++k) {
      record.attrs.push_back(static_cast<Key>(
          rng.UniformInt(-kAttrDomain, kAttrDomain)));
    }
    record.value = "payload-" + std::to_string(i);
    db->InsertRecord(record);
  }
  return db;
}

/// Seeded AND/OR specs with 2 predicates over distinct attributes, each
/// spanning ~10% of the attribute domain (low selectivity keeps VO work
/// dominant, matching the paper's query benches).
std::vector<QuerySpec> MakeSpecs(uint64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<QuerySpec> specs;
  specs.reserve(count);
  const Key width = kAttrDomain / 5;
  for (uint64_t i = 0; i < count; ++i) {
    QuerySpec spec;
    spec.op = (i % 2 == 0) ? BoolOp::kAnd : BoolOp::kOr;
    const uint32_t a0 = static_cast<uint32_t>(rng.UniformInt(0, kNumAttrs - 1));
    const uint32_t a1 = (a0 + 1) % kNumAttrs;
    for (uint32_t attr : {a0, a1}) {
      const Key lb = static_cast<Key>(
          rng.UniformInt(-kAttrDomain, kAttrDomain - width));
      spec.predicates.push_back(
          Predicate{PredicateKind::kRange, attr, lb, lb + width});
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

void MultiAttrQuery(benchmark::State& state, const std::string& name) {
  const uint64_t n = EnvScale("GEM2_MULTIATTR_N", 2000);
  const uint64_t queries = EnvScale("GEM2_MULTIATTR_QUERIES", 50);
  const int forgeries =
      static_cast<int>(EnvScale("GEM2_MULTIATTR_FORGERIES", 500));

  auto db = BuildMultiAttr(n, 42);
  const std::vector<QuerySpec> specs = MakeSpecs(queries, 43);

  // SP side: execute + serialize each spec once, recording wire size.
  std::vector<core::SpecResponse> responses;
  responses.reserve(specs.size());
  uint64_t wire_bytes = 0;
  const auto t_exec0 = Clock::now();
  for (const QuerySpec& spec : specs) {
    responses.push_back(db->ExecuteSpec(spec));
    wire_bytes +=
        SerializeSpecResponse(responses.back(), db->wire_version()).size();
  }
  const double exec_seconds =
      std::chrono::duration<double>(Clock::now() - t_exec0).count();

  // Aggregate twin of every AND spec: COUNT over its first predicate. The
  // answer must ship boundary structure only, so its wire image is a strict
  // subset of the full range answer over the same predicate.
  uint64_t agg_bytes = 0, agg_full_bytes = 0, agg_queries = 0;
  for (const QuerySpec& spec : specs) {
    QuerySpec agg;
    agg.predicates.push_back(spec.predicates[0]);
    agg.aggregate = AggregateKind::kCount;
    agg_bytes += SerializeSpecResponse(db->ExecuteSpec(agg),
                                       db->wire_version()).size();
    QuerySpec full;
    full.predicates.push_back(spec.predicates[0]);
    agg_full_bytes += SerializeSpecResponse(db->ExecuteSpec(full),
                                            db->wire_version()).size();
    ++agg_queries;
  }

  // Client side: full boolean verification of every honest answer. Any
  // rejection is a correctness bug, not a measurement.
  const auto t_verify0 = Clock::now();
  for (size_t i = 0; i < specs.size(); ++i) {
    core::VerifiedSpecResult vr = db->VerifySpecFor(specs[i], responses[i]);
    benchmark::DoNotOptimize(vr.ok);
    if (!vr.ok) {
      state.SkipWithError(("honest spec answer rejected: " + vr.error).c_str());
      return;
    }
  }
  const double verify_seconds =
      std::chrono::duration<double>(Clock::now() - t_verify0).count();

  // Security gate: the seeded spec-forgery sweep. Candidates cover the
  // boolean shapes plus an aggregate so every SpecMutationOp family applies.
  fault::SpecAdversaryOptions adv;
  adv.seed = 7;
  adv.mutations = forgeries;
  adv.wire_version = db->wire_version();
  adv.specs.assign(specs.begin(),
                   specs.begin() + std::min<size_t>(specs.size(), 4));
  {
    QuerySpec agg;
    agg.predicates.push_back(specs.front().predicates[0]);
    agg.aggregate = AggregateKind::kCount;
    adv.specs.push_back(std::move(agg));
  }
  const fault::AdversaryReport report = fault::RunSpecAdversarialSweep(*db, adv);
  const double rejection =
      report.attempted > 0
          ? static_cast<double>(report.rejected_parse + report.rejected_verify) /
                static_cast<double>(report.attempted)
          : 0.0;

  for (auto _ : state) benchmark::DoNotOptimize(responses.size());

  const double q = static_cast<double>(queries);
  BenchRun run("multiattr", name, db->BackendName(), "uniform", n);
  run.Extra("attrs", static_cast<double>(kNumAttrs));
  run.Extra("queries", q);
  run.Extra("qps_execute", exec_seconds > 0 ? q / exec_seconds : 0);
  run.Extra("qps_verify", verify_seconds > 0 ? q / verify_seconds : 0);
  run.Extra("bytes_per_query", static_cast<double>(wire_bytes) / q);
  run.Extra("agg_bytes_per_query",
            static_cast<double>(agg_bytes) / static_cast<double>(agg_queries));
  run.Extra("agg_bytes_reduction",
            agg_full_bytes > 0
                ? 1.0 - static_cast<double>(agg_bytes) /
                            static_cast<double>(agg_full_bytes)
                : 0);
  run.Extra("forgeries_attempted", static_cast<double>(report.attempted));
  run.Extra("rejected_parse", static_cast<double>(report.rejected_parse));
  run.Extra("rejected_verify", static_cast<double>(report.rejected_verify));
  run.Extra("forgery_rejection", rejection);
  run.Finish();

  state.counters["qps_verify"] = benchmark::Counter(
      verify_seconds > 0 ? q / verify_seconds : 0);
  state.counters["forgery_rejection"] = benchmark::Counter(rejection);
}

void RegisterAll() {
  const uint64_t n = EnvScale("GEM2_MULTIATTR_N", 2000);
  const std::string name = "MultiAttr/K:3/N:" + std::to_string(n);
  benchmark::RegisterBenchmark(
      name.c_str(),
      [name](benchmark::State& s) { MultiAttrQuery(s, name); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gem2::bench::EmitBenchJson();
  benchmark::Shutdown();
  return 0;
}
