// End-to-end chain-simulator throughput: the full insert pipeline (contract
// execution -> gas metering -> ledger -> block sealing) measured in blocks/s
// and txs/s, in two configurations:
//   - fast:   the default simulator (incremental state commitment, pipelined
//             sealing, arena-backed MPT, batched Keccak) — what every paper
//             bench runs on;
//   - compat: the pre-overhaul reference (from-scratch state roots, serial
//             sealing), kept as EnvironmentOptions flags for equivalence
//             testing and this comparison.
// Gas and sealed chains are bit-identical between the two; only wall clock
// differs. Also reported: how much commitment work the incremental path
// avoids (entries updated vs scanned, full rebuilds), arena allocation
// pressure, and Keccak permutations per transaction. Emits
// BENCH_simulator.json; the nightly paper-scale CI job gates on blocks_per_s.
#include <chrono>

#include "bench_common.h"
#include "common/arena.h"
#include "crypto/keccak.h"

namespace gem2::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct SimResult {
  double seconds = 0;
  double blocks = 0;
  double txs = 0;
  double perms = 0;
  chain::StateCommitStats commit;
};

SimResult RunOnce(BenchRun* run, bool fast, chain::StateCommitment mode,
                  uint64_t n) {
  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
  DbOptions o = MakeDbOptions(AdsKind::kGem2, gen);
  o.env.incremental_commitment = fast;
  o.env.pipeline_sealing = fast;
  o.env.state_commitment = mode;
  AuthenticatedDb db(o);

  const uint64_t perms0 = crypto::KeccakPermutationCount();
  const auto t0 = Clock::now();
  for (uint64_t i = 0; i < n; ++i) {
    chain::TxReceipt r = db.Insert(gen.Next().object);
    if (run != nullptr) run->Count(r);
  }
  db.environment().SealBlock();  // flush the partial tail block
  const chain::Blockchain& chain = db.environment().blockchain();  // drains
  const auto t1 = Clock::now();

  SimResult res;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  res.blocks = static_cast<double>(chain.height());
  res.txs = static_cast<double>(db.environment().num_transactions());
  res.perms = static_cast<double>(crypto::KeccakPermutationCount() - perms0);
  res.commit = db.environment().commit_stats();
  benchmark::DoNotOptimize(chain.latest().header.state_root);
  return res;
}

void Simulator(benchmark::State& state, const std::string& name, bool fast,
               chain::StateCommitment mode, uint64_t n) {
  BenchRun run("simulator", name, "GEM2-tree", "uniform", n);
  SimResult res;
  const auto arena0 = common::Arena::GlobalStats();
  for (auto _ : state) {
    res = RunOnce(&run, fast, mode, n);
  }
  const auto arena1 = common::Arena::GlobalStats();

  const double blocks_per_s = res.blocks / res.seconds;
  const double txs_per_s = res.txs / res.seconds;
  run.Extra("blocks_per_s", blocks_per_s);
  run.Extra("txs_per_s", txs_per_s);
  run.Extra("perms_per_tx", res.perms / res.txs);
  // Incremental-commitment effectiveness: of the digest entries scanned at
  // state-root time, how many actually had to be re-hashed into the
  // persistent structure, and how often a from-scratch rebuild was forced.
  run.Extra("commit_entries_seen", static_cast<double>(res.commit.entries_seen));
  run.Extra("commit_entries_updated",
            static_cast<double>(res.commit.entries_updated));
  run.Extra("commit_full_rebuilds",
            static_cast<double>(res.commit.full_rebuilds));
  run.Extra("commit_root_computations",
            static_cast<double>(res.commit.root_computations));
  // Arena pressure over this run: objects that would each have been a heap
  // allocation in the pointer-based MPT, amortized over block-reuse epochs.
  run.Extra("arena_allocations",
            static_cast<double>(arena1.allocations - arena0.allocations));
  run.Extra("arena_heap_blocks",
            static_cast<double>(arena1.blocks - arena0.blocks));
  run.Extra("arena_epochs", static_cast<double>(arena1.epochs - arena0.epochs));
  run.Finish();

  state.counters["blocks_per_s"] = benchmark::Counter(blocks_per_s);
  state.counters["txs_per_s"] = benchmark::Counter(txs_per_s);
}

void RegisterAll() {
  const uint64_t n = EnvScale("GEM2_SIM_N", 50'000);
  struct Config {
    const char* tag;
    bool fast;
    chain::StateCommitment mode;
  };
  // merkle = positional binary tree (paper default); mpt = hex Patricia trie
  // (the arena-backed path — its allocation counters only move here).
  const Config configs[] = {
      {"fast/merkle", true, chain::StateCommitment::kBinaryMerkle},
      {"compat/merkle", false, chain::StateCommitment::kBinaryMerkle},
      {"fast/mpt", true, chain::StateCommitment::kPatriciaTrie},
      {"compat/mpt", false, chain::StateCommitment::kPatriciaTrie},
  };
  for (const Config& c : configs) {
    std::string name =
        std::string("Simulator/") + c.tag + "/N:" + std::to_string(n);
    const bool fast = c.fast;
    const chain::StateCommitment mode = c.mode;
    benchmark::RegisterBenchmark(name.c_str(),
                                 [name, fast, mode, n](benchmark::State& s) {
                                   Simulator(s, name, fast, mode, n);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gem2::bench::EmitBenchJson();
  benchmark::Shutdown();
  return 0;
}
