// Open-loop service load harness: thousands of concurrent light-client
// connections drive the SP server front-end (src/net) at a FIXED arrival
// rate — arrivals are scheduled by the clock, not by response completions,
// so queueing delay shows up as latency instead of silently throttling the
// offered load (the coordinated-omission trap a closed loop falls into).
//
// Every client connection fully verifies every response it accepts: the
// traced envelope is stripped, the image parsed, and the VO checked against
// chain state prefetched once via ReadChainState (the hot VerifyAgainst
// path, pure CPU, safe to run from many client threads at once). A BUSY
// frame is an explicit shed and is counted, never retried — the harness
// measures what the server sheds under overload, it does not hide it.
//
// Emits BENCH_service.json with qps, shed/error rates, and client-observed
// p50/p99/p999 latency from the reservoir histogram, plus the server's own
// service.request_ns.query quantiles for comparison. CI smoke-gates the
// reduced run (qps floor, shed ceiling, zero verification failures); the
// full default is 10k connections.
//
// Scale knobs:
//   GEM2_SERVICE_CONNS    concurrent connections        (default 10000)
//   GEM2_SERVICE_RATE     aggregate arrivals per second (default 5000)
//   GEM2_SERVICE_SECONDS  measured duration             (default 10)
//   GEM2_SERVICE_N        preloaded objects             (default 20000)
//   GEM2_SERVICE_THREADS  client event-loop threads     (default cores/2)
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/query_engine.h"
#include "net/frame.h"
#include "net/reactor.h"
#include "net/server.h"
#include "telemetry/metrics.h"

namespace gem2::bench {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Lifts RLIMIT_NOFILE toward the hard cap so a 10k-connection run (two fds
/// per connection counting the server side, plus epoll instances) fits.
void RaiseFdLimit(uint64_t needed) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur >= needed) return;
  lim.rlim_cur = lim.rlim_max == RLIM_INFINITY
                     ? needed
                     : std::min<rlim_t>(needed, lim.rlim_max);
  setrlimit(RLIMIT_NOFILE, &lim);
}

int ConnectLoopback(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = fcntl(fd, F_GETFL);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

/// Per-thread tallies, summed after the run (no cross-thread contention on
/// the hot path; only the latency histogram is shared and it is atomic).
struct Tally {
  uint64_t sent = 0;
  uint64_t responses = 0;
  uint64_t busy = 0;
  uint64_t server_errors = 0;
  uint64_t send_failures = 0;
  uint64_t conn_failures = 0;
  uint64_t verify_failures = 0;
  uint64_t lost = 0;  // outstanding at drain end — never answered
};

struct Pending {
  uint64_t sent_ns = 0;
  Key lb = 0;
  Key ub = 0;
};

struct Conn {
  int fd = -1;
  net::FrameDecoder decoder;
  std::unordered_map<uint64_t, Pending> pending;
  uint64_t next_id = 1;
  bool dead = false;
};

/// One client event-loop thread: owns `conns` connections on its own epoll,
/// fires arrivals on schedule round-robin, drains and verifies responses.
void RunClientThread(size_t thread_idx, uint16_t port, size_t conn_count,
                     double rate_per_thread, uint64_t duration_ns,
                     const core::RangeStore* verifier,
                     const std::vector<chain::AuthenticatedState>* states,
                     telemetry::Histogram* latency, Tally* out) {
  Tally tally;
  std::vector<Conn> conns(conn_count);
  net::Reactor reactor;
  for (size_t i = 0; i < conn_count; ++i) {
    conns[i].fd = ConnectLoopback(port);
    if (conns[i].fd < 0) {
      conns[i].dead = true;
      ++tally.conn_failures;
      continue;
    }
    reactor.Add(conns[i].fd, EPOLLIN, i);
  }

  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform,
                                     42 + 1000 * (thread_idx + 1)));

  auto handle_frame = [&](Conn& conn, const net::Frame& frame) {
    const auto it = conn.pending.find(frame.request_id);
    if (it == conn.pending.end()) return;  // unsolicited; ignore
    const Pending pending = it->second;
    conn.pending.erase(it);
    switch (frame.type) {
      case net::FrameType::kBusy:
        ++tally.busy;
        return;
      case net::FrameType::kError:
        ++tally.server_errors;
        return;
      case net::FrameType::kResponse:
        break;
      default:
        ++tally.server_errors;
        return;
    }
    latency->Observe(NowNs() - pending.sent_ns);
    ++tally.responses;
    // Full client verification on the prefetched-chain-state hot path.
    const core::TracedWire unwrapped = core::UnwrapTracedWire(frame.body);
    const auto response = core::ParseResponse(unwrapped.image);
    if (!response.has_value() || response->lb != pending.lb ||
        response->ub != pending.ub) {
      ++tally.verify_failures;
      return;
    }
    const core::VerifiedResult vr = verifier->VerifyAgainst(*states, *response);
    if (!vr.ok) ++tally.verify_failures;
  };

  auto drain_conn = [&](size_t idx) {
    Conn& conn = conns[idx];
    if (conn.dead) return;
    uint8_t buf[64 * 1024];
    while (true) {
      const ssize_t n = read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        conn.decoder.Feed(buf, static_cast<size_t>(n));
        net::Frame frame;
        while (conn.decoder.Next(&frame) == net::FrameDecoder::Result::kFrame) {
          handle_frame(conn, frame);
        }
        if (conn.decoder.failed()) {
          ++tally.conn_failures;
          break;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      ++tally.conn_failures;  // EOF or hard error
      break;
    }
    reactor.Remove(conn.fd);
    close(conn.fd);
    conn.fd = -1;
    conn.dead = true;
  };

  const uint64_t start_ns = NowNs();
  const uint64_t end_ns = start_ns + duration_ns;
  const double interval_ns = 1e9 / rate_per_thread;
  double next_send = static_cast<double>(start_ns);
  size_t rr = 0;
  std::vector<net::Reactor::Event> events(512);

  while (true) {
    const uint64_t now = NowNs();
    if (now >= end_ns) break;
    // Fire every arrival that is due — all of them, even if the loop fell
    // behind (open loop: the schedule does not wait for the system).
    while (next_send <= static_cast<double>(now) &&
           static_cast<uint64_t>(next_send) < end_ns) {
      next_send += interval_ns;
      // Round-robin to the next live connection.
      size_t tries = conns.size();
      while (tries-- > 0 && conns[rr % conns.size()].dead) ++rr;
      Conn& conn = conns[rr % conns.size()];
      ++rr;
      if (conn.dead) continue;
      const workload::RangeQuerySpec range = gen.NextQuery(0.01);
      const uint64_t id = conn.next_id++;
      const Bytes frame = net::EncodeQueryFrame(id, range.lb, range.ub);
      const ssize_t n = send(conn.fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      if (n != static_cast<ssize_t>(frame.size())) {
        ++tally.send_failures;  // partial write of a 36-byte frame = jammed
        continue;
      }
      conn.pending.emplace(id, Pending{NowNs(), range.lb, range.ub});
      ++tally.sent;
    }
    const uint64_t after_sends = NowNs();
    int wait_ms = 0;
    if (next_send > static_cast<double>(after_sends)) {
      wait_ms = static_cast<int>(
          (next_send - static_cast<double>(after_sends)) / 1e6);
      wait_ms = std::min(wait_ms, 10);
    }
    const int nev = reactor.Wait(events.data(), static_cast<int>(events.size()),
                                 wait_ms);
    for (int e = 0; e < nev; ++e) {
      if (events[e].tag == net::Reactor::kWakeupTag) continue;
      drain_conn(static_cast<size_t>(events[e].tag));
    }
  }

  // Drain: give in-flight responses a grace window to arrive and verify.
  const uint64_t drain_deadline = NowNs() + 2'000'000'000ull;
  auto outstanding = [&] {
    size_t total = 0;
    for (const Conn& conn : conns) {
      if (!conn.dead) total += conn.pending.size();
    }
    return total;
  };
  while (outstanding() > 0 && NowNs() < drain_deadline) {
    const int nev =
        reactor.Wait(events.data(), static_cast<int>(events.size()), 50);
    for (int e = 0; e < nev; ++e) {
      if (events[e].tag == net::Reactor::kWakeupTag) continue;
      drain_conn(static_cast<size_t>(events[e].tag));
    }
  }
  tally.lost = outstanding();
  for (Conn& conn : conns) {
    if (conn.fd >= 0) close(conn.fd);
  }
  *out = tally;
}

void ServiceLoad(benchmark::State& state, const std::string& name) {
  const uint64_t conns = EnvScale("GEM2_SERVICE_CONNS", 10'000);
  const uint64_t rate = EnvScale("GEM2_SERVICE_RATE", 5'000);
  const uint64_t seconds = EnvScale("GEM2_SERVICE_SECONDS", 10);
  const uint64_t n = EnvScale("GEM2_SERVICE_N", 20'000);
  const uint64_t threads = EnvScale(
      "GEM2_SERVICE_THREADS",
      std::max<uint64_t>(2, std::thread::hardware_concurrency() / 2));

  RaiseFdLimit(2 * conns + 1024);

  WorkloadGenerator gen;
  auto db = BuildDb(AdsKind::kGem2, KeyDistribution::kUniform, n, &gen);
  core::SpQueryEngine engine(db.get());

  net::ServerOptions options;
  options.max_connections = conns + 1024;
  options.max_in_flight = 4096;
  net::SpServer server(engine, options);
  server.Start();

  // Chain state fetched ONCE; every client thread verifies against it on the
  // const pure-CPU path (Figs. 9-10's hot loop), so no client serializes on
  // the light-client sync.
  const std::vector<chain::AuthenticatedState> states = db->ReadChainState();
  telemetry::Histogram& latency =
      telemetry::MetricsRegistry::Global().histogram("service_load.latency_ns");

  for (auto _ : state) {
    std::vector<Tally> tallies(threads);
    std::vector<std::thread> pool;
    const uint64_t base = conns / threads;
    const uint64_t extra = conns % threads;
    for (uint64_t t = 0; t < threads; ++t) {
      const uint64_t share = base + (t < extra ? 1 : 0);
      pool.emplace_back(RunClientThread, t, server.port(), share,
                        static_cast<double>(rate) / threads,
                        seconds * 1'000'000'000ull, db.get(), &states, &latency,
                        &tallies[t]);
    }
    for (auto& thread : pool) thread.join();

    Tally total;
    for (const Tally& t : tallies) {
      total.sent += t.sent;
      total.responses += t.responses;
      total.busy += t.busy;
      total.server_errors += t.server_errors;
      total.send_failures += t.send_failures;
      total.conn_failures += t.conn_failures;
      total.verify_failures += t.verify_failures;
      total.lost += t.lost;
    }
    const net::ServerStats sstats = server.stats();
    const telemetry::QuantileSummary q = latency.Quantiles();
    const telemetry::QuantileSummary server_q =
        telemetry::MetricsRegistry::Global()
            .histogram("service.request_ns.query")
            .Quantiles();
    const double qps = static_cast<double>(total.responses) / seconds;
    const double denom = std::max<uint64_t>(1, total.sent);

    BenchRun run("service", name, "GEM2-tree", "uniform", n);
    run.Extra("conns", static_cast<double>(conns));
    run.Extra("rate_target", static_cast<double>(rate));
    run.Extra("seconds", static_cast<double>(seconds));
    run.Extra("client_threads", static_cast<double>(threads));
    run.Extra("cores", std::thread::hardware_concurrency());
    run.Extra("sent", static_cast<double>(total.sent));
    run.Extra("qps", qps);
    run.Extra("shed_rate", static_cast<double>(total.busy) / denom);
    run.Extra("error_rate",
              static_cast<double>(total.server_errors + total.send_failures +
                                  total.conn_failures + total.lost) /
                  denom);
    run.Extra("verification_failures",
              static_cast<double>(total.verify_failures));
    run.Extra("lost", static_cast<double>(total.lost));
    run.Extra("p50_ns", q.p50);
    run.Extra("p99_ns", q.p99);
    run.Extra("p999_ns", q.p999);
    run.Extra("server_p50_ns", server_q.p50);
    run.Extra("server_p99_ns", server_q.p99);
    run.Extra("server_shed", static_cast<double>(sstats.shed));
    run.Extra("server_accepted", static_cast<double>(sstats.accepted));
    run.Finish();

    state.counters["qps"] = qps;
    state.counters["p99_ms"] = q.p99 / 1e6;
    state.counters["verify_failures"] =
        static_cast<double>(total.verify_failures);
  }
  server.Stop();
}

void RegisterAll() {
  const uint64_t conns = EnvScale("GEM2_SERVICE_CONNS", 10'000);
  const uint64_t rate = EnvScale("GEM2_SERVICE_RATE", 5'000);
  const std::string name = "Service/conns:" + std::to_string(conns) +
                           "/rate:" + std::to_string(rate);
  benchmark::RegisterBenchmark(
      name.c_str(),
      [name](benchmark::State& s) { ServiceLoad(s, name); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gem2::bench::EmitBenchJson();
  benchmark::Shutdown();
  return 0;
}
