// Reproduces paper Fig. 8: average gas consumption vs update ratio, for the
// MB-tree, GEM2-tree, and GEM2*-tree under uniform and zipfian keys.
//
// Protocol (Section VII-B1, scaled): preload an existing database, then
// drive a mixed insert/update stream with update ratio in {0.4, 0.2, 0.1,
// 0.05} and report average gas per operation.
//
// Expected shape: gas decreases as the update ratio rises (updates are
// cheaper than inserts); GEM2 saves >= 30% against the MB-tree in every
// setting; GEM2* saves the most; the savings grow with more inserts.
#include "bench_common.h"

namespace gem2::bench {
namespace {

void GasVsUpdateRatio(benchmark::State& state, const std::string& name,
                      const char* ads, AdsKind kind, KeyDistribution dist,
                      double update_ratio) {
  const uint64_t preload = EnvScale("GEM2_FIG8_PRELOAD", 10'000);
  const uint64_t ops = EnvScale("GEM2_FIG8_OPS", 10'000);

  uint64_t total_gas = 0;
  BenchRun run("fig8", name, ads, DistName(dist), preload);
  run.Extra("update_ratio", update_ratio);
  for (auto _ : state) {
    WorkloadGenerator gen(MakeWorkload(dist));
    AuthenticatedDb db(MakeDbOptions(kind, gen));
    for (uint64_t i = 0; i < preload; ++i) db.Insert(gen.Next().object);

    // Mixed phase over the same key population. Only this phase is the
    // figure's data point; the preload receipts are not counted.
    gen.set_update_ratio(update_ratio);
    for (uint64_t i = 0; i < ops; ++i) {
      Operation op = gen.Next();
      chain::TxReceipt r = op.type == Operation::Type::kUpdate
                               ? db.Update(op.object)
                               : db.Insert(op.object);
      run.Count(r);
      total_gas += r.gas_used;
    }
  }
  run.Finish();
  state.counters["gas_per_op"] =
      benchmark::Counter(static_cast<double>(total_gas) / static_cast<double>(ops));
}

void RegisterAll() {
  const struct {
    AdsKind kind;
    const char* name;
  } kinds[] = {
      {AdsKind::kMbTree, "MB-tree"},
      {AdsKind::kGem2, "GEM2-tree"},
      {AdsKind::kGem2Star, "GEM2x-tree"},
  };
  for (KeyDistribution dist :
       {KeyDistribution::kUniform, KeyDistribution::kZipfian}) {
    for (const auto& k : kinds) {
      for (double ratio : {0.4, 0.2, 0.1, 0.05}) {
        std::string name = std::string("Fig8/") + k.name + "/" + DistName(dist) +
                           "/update_ratio:" + std::to_string(ratio).substr(0, 4);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [name, ads = k.name, kind = k.kind, dist, ratio](benchmark::State& s) {
              GasVsUpdateRatio(s, name, ads, kind, dist, ratio);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gem2::bench::EmitBenchJson();
  benchmark::Shutdown();
  return 0;
}
