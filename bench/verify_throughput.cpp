// Client verify throughput: serial vs batched+pooled verification over
// composite responses, and v2 vs v3 wire bytes per query.
//
// For S in {1, 4, 8} two bit-identical sharded worlds are preloaded with the
// same uniform workload. One verifies serially (scalar Keccak, no pool); the
// other uses the batched 8-way hash engine with composite slices fanned out
// on the global ThreadPool. Both run VerifyAgainst over the same pre-gathered
// low-selectivity responses (the hot pure-CPU client path of Figs. 9-10), so
// the qps ratio isolates the client-side speedup. The same responses are
// serialized in both wire formats to report actual bytes shipped per query.
//
// Emits BENCH_verify.json. Reported per row: qps_serial, qps_batched,
// speedup, bytes_v2/bytes_v3 per query, vo_bytes_reduction, and `cores` —
// the CI throughput floor only applies on multi-core runners.
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "core/wire.h"

namespace gem2::bench {
namespace {

using Clock = std::chrono::steady_clock;

// Builds one sharded world with the given client-side verification config.
// The workload seed is fixed, so every world built at the same (n, shards)
// holds bit-identical data and digests — responses gathered from one verify
// against the other's chain state.
std::unique_ptr<shard::ShardedDb> BuildWorld(size_t shards, uint64_t n,
                                             bool batched,
                                             common::ThreadPool* pool,
                                             WorkloadGenerator* gen_out) {
  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
  shard::ShardOptions o;
  o.base = MakeDbOptions(AdsKind::kGem2, gen);
  o.base.wire_version = core::WireVersion::kV3;
  o.base.client.batched_hashing = batched;
  o.base.client.pool = pool;
  o.bounds = gen.ShardBounds(shards);
  auto world = std::make_unique<shard::ShardedDb>(std::move(o));
  for (uint64_t i = 0; i < n; ++i) world->Insert(gen.Next().object);
  if (gen_out != nullptr) *gen_out = std::move(gen);
  return world;
}

double TimeVerify(const core::RangeStore& store,
                  const std::vector<chain::AuthenticatedState>& states,
                  const std::vector<core::QueryResponse>& responses) {
  const auto t0 = Clock::now();
  for (const auto& response : responses) {
    core::VerifiedResult vr = store.VerifyAgainst(states, response);
    benchmark::DoNotOptimize(vr.ok);
  }
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void VerifyThroughput(benchmark::State& state, const std::string& name,
                      size_t shards, uint64_t n, double selectivity) {
  const uint64_t queries = EnvScale("GEM2_VERIFY_QUERIES", 100);

  WorkloadGenerator gen;
  auto serial_world = BuildWorld(shards, n, false, nullptr, &gen);
  auto batched_world =
      BuildWorld(shards, n, true, &common::ThreadPool::Global(), nullptr);
  auto serial_states = serial_world->ReadChainState();
  auto batched_states = batched_world->ReadChainState();

  // The low-selectivity query set is gathered once: the timed loops measure
  // client verification only, never the SP. Raw result payloads ship
  // byte-identical in both formats, so the VO-bytes columns subtract them:
  // what remains is the verification overhead v3's compression targets.
  std::vector<core::QueryResponse> responses;
  responses.reserve(queries);
  uint64_t bytes_v2 = 0, bytes_v3 = 0, payload_bytes = 0;
  for (uint64_t q = 0; q < queries; ++q) {
    workload::RangeQuerySpec spec = gen.NextQuery(selectivity);
    responses.push_back(serial_world->Query(spec.lb, spec.ub));
    const core::QueryResponse& r = responses.back();
    bytes_v2 += SerializeResponse(r, core::WireVersion::kV2).size();
    bytes_v3 += SerializeResponse(r, core::WireVersion::kV3).size();
    for (const auto& tree : r.trees)
      for (const auto& object : tree.objects) payload_bytes += object.value.size();
    for (const auto& slice : r.slices)
      for (const auto& tree : slice.response.trees)
        for (const auto& object : tree.objects)
          payload_bytes += object.value.size();
  }
  const double vo_v2 = static_cast<double>(bytes_v2 - payload_bytes);
  const double vo_v3 = static_cast<double>(bytes_v3 - payload_bytes);

  // Correctness gate: both verifiers must accept the honest answers with
  // identical results before either loop is worth timing.
  for (const auto* probe : {&responses.front(), &responses.back()}) {
    core::VerifiedResult serial =
        serial_world->VerifyAgainst(serial_states, *probe);
    core::VerifiedResult batched =
        batched_world->VerifyAgainst(batched_states, *probe);
    if (!serial.ok || !batched.ok || serial.objects != batched.objects) {
      state.SkipWithError("serial/batched verify disagree on an honest response");
      return;
    }
  }

  double serial_seconds = 0, batched_seconds = 0;
  for (auto _ : state) {
    serial_seconds += TimeVerify(*serial_world, serial_states, responses);
    batched_seconds += TimeVerify(*batched_world, batched_states, responses);
  }

  const double q = static_cast<double>(queries);
  const double qps_serial = serial_seconds > 0 ? q / serial_seconds : 0;
  const double qps_batched = batched_seconds > 0 ? q / batched_seconds : 0;

  BenchRun run("verify", name, serial_world->BackendName(), "uniform", n);
  run.Extra("shards", static_cast<double>(shards));
  run.Extra("selectivity", selectivity);
  run.Extra("queries", q);
  run.Extra("qps_serial", qps_serial);
  run.Extra("qps_batched", qps_batched);
  run.Extra("speedup", qps_serial > 0 ? qps_batched / qps_serial : 0);
  run.Extra("bytes_v2_per_query", static_cast<double>(bytes_v2) / q);
  run.Extra("bytes_v3_per_query", static_cast<double>(bytes_v3) / q);
  run.Extra("payload_bytes_per_query", static_cast<double>(payload_bytes) / q);
  run.Extra("vo_bytes_v2_per_query", vo_v2 / q);
  run.Extra("vo_bytes_v3_per_query", vo_v3 / q);
  run.Extra("vo_bytes_reduction", vo_v2 > 0 ? 1.0 - vo_v3 / vo_v2 : 0);
  run.Extra("wire_bytes_reduction",
            bytes_v2 > 0
                ? 1.0 - static_cast<double>(bytes_v3) / static_cast<double>(bytes_v2)
                : 0);
  run.Extra("cores", static_cast<double>(std::thread::hardware_concurrency()));
  run.Extra("pool_threads",
            static_cast<double>(common::ThreadPool::Global().num_threads()));
  run.Finish();

  state.counters["qps_serial"] = benchmark::Counter(qps_serial);
  state.counters["qps_batched"] = benchmark::Counter(qps_batched);
  state.counters["speedup"] =
      benchmark::Counter(qps_serial > 0 ? qps_batched / qps_serial : 0);
  state.counters["bytes_v3_per_query"] =
      benchmark::Counter(static_cast<double>(bytes_v3) / q);
}

void RegisterAll() {
  const uint64_t n = EnvScale("GEM2_VERIFY_N", 10'000);
  // Low selectivity (paper Figs. 9-10 low end), in basis points. 1% keeps the
  // VO large enough that its compression is measurable past the image's
  // incompressible floor (pruned-subtree hashes and raw payloads).
  const double selectivity =
      static_cast<double>(EnvScale("GEM2_VERIFY_SEL_BP", 100)) / 10'000.0;
  for (size_t shards : {size_t{1}, size_t{4}, size_t{8}}) {
    std::string name =
        "Verify/S:" + std::to_string(shards) + "/N:" + std::to_string(n);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [name, shards, n, selectivity](benchmark::State& s) {
          VerifyThroughput(s, name, shards, n, selectivity);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gem2::bench::EmitBenchJson();
  benchmark::Shutdown();
  return 0;
}
