// Ablation: data-owner batching. With Ethereum's 21,000-gas intrinsic fee
// per transaction, submitting objects one-per-transaction pays the fee N
// times; batching K objects per transaction amortizes it — but a batch is one
// gasLimit budget, so K is bounded (see the gaslimit_feasibility bench).
//
// Expected shape: gas/object falls toward the pure maintenance cost as K
// grows, with diminishing returns once the intrinsic fee is amortized away.
#include "bench_common.h"

namespace gem2::bench {
namespace {

void GasVsBatchSize(benchmark::State& state, uint64_t batch) {
  const uint64_t n = EnvScale("GEM2_BATCH_N", 20'000);
  uint64_t total_gas = 0;
  for (auto _ : state) {
    WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
    DbOptions options = MakeDbOptions(AdsKind::kGem2, gen);
    options.env.tx_base_fee = 21'000;
    AuthenticatedDb db(options);
    uint64_t inserted = 0;
    while (inserted < n) {
      std::vector<Object> objects;
      for (uint64_t i = 0; i < batch && inserted + i < n; ++i) {
        objects.push_back(gen.Next().object);
      }
      inserted += objects.size();
      total_gas += db.InsertBatch(objects).gas_used;
    }
  }
  state.counters["gas_per_object"] =
      benchmark::Counter(static_cast<double>(total_gas) / static_cast<double>(n));
  state.counters["intrinsic_share_pct"] = benchmark::Counter(
      100.0 * 21'000.0 / static_cast<double>(batch) /
      (static_cast<double>(total_gas) / static_cast<double>(n)));
}

void RegisterAll() {
  for (uint64_t batch : {1, 2, 4, 8, 16, 32, 64}) {
    benchmark::RegisterBenchmark(
        ("AblationBatch/GEM2-tree/K:" + std::to_string(batch)).c_str(),
        [batch](benchmark::State& s) { GasVsBatchSize(s, batch); })
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
