// VO_chain size vs database size (paper Section V-F: "As for VO_chain, its
// size is linear to the number of partitions (i.e., max)").
//
// Expected shape: for the GEM2-tree, the number of on-chain digests — and so
// the VO_chain bytes a client downloads — grows with max = O(log N), not
// with N; the MB-tree has a constant single digest; the GEM2*-tree pays
// O(regions * log) but each query only consumes the overlapping regions'
// digests.
#include "bench_common.h"

namespace gem2::bench {
namespace {

void VoChainSize(benchmark::State& state, AdsKind kind, uint64_t n) {
  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
  AuthenticatedDb db(MakeDbOptions(kind, gen));
  for (uint64_t i = 0; i < n; ++i) db.Insert(gen.Next().object);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.ChainDigests());
  }
  const auto digests = db.ChainDigests();
  uint64_t bytes = 0;
  for (const auto& d : digests) bytes += d.label.size() + 32;
  state.counters["digests"] = benchmark::Counter(static_cast<double>(digests.size()));
  state.counters["vo_chain_bytes"] = benchmark::Counter(static_cast<double>(bytes));
}

void RegisterAll() {
  const struct {
    AdsKind kind;
    const char* name;
  } kinds[] = {
      {AdsKind::kMbTree, "MB-tree"},
      {AdsKind::kGem2, "GEM2-tree"},
      {AdsKind::kGem2Star, "GEM2x-tree"},
  };
  const uint64_t max_n = EnvScale("GEM2_VOCHAIN_MAX_N", 100'000);
  for (const auto& k : kinds) {
    for (uint64_t n = 1000; n <= max_n; n *= 10) {
      benchmark::RegisterBenchmark(
          (std::string("VoChain/") + k.name + "/N:" + std::to_string(n)).c_str(),
          [kind = k.kind, n](benchmark::State& s) { VoChainSize(s, kind, n); })
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
