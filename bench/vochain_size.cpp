// VO_chain size vs database size (paper Section V-F: "As for VO_chain, its
// size is linear to the number of partitions (i.e., max)").
//
// Expected shape: for the GEM2-tree, the number of on-chain digests — and so
// the VO_chain bytes a client downloads — grows with max = O(log N), not
// with N; the MB-tree has a constant single digest; the GEM2*-tree pays
// O(regions * log) but each query only consumes the overlapping regions'
// digests.
//
// The VO_sp columns report what a 1%-selectivity response actually costs on
// the wire: wire_v2_bytes and wire_v3_bytes are the serialized image sizes
// straight from the wire encoder (not a per-field estimate), so the v2→v3
// column gap is the compression a client really sees.
#include "bench_common.h"
#include "core/wire.h"

namespace gem2::bench {
namespace {

void VoChainSize(benchmark::State& state, AdsKind kind, uint64_t n) {
  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
  AuthenticatedDb db(MakeDbOptions(kind, gen));
  for (uint64_t i = 0; i < n; ++i) db.Insert(gen.Next().object);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.ChainDigests());
  }
  const auto digests = db.ChainDigests();
  uint64_t bytes = 0;
  for (const auto& d : digests) bytes += d.label.size() + 32;
  state.counters["digests"] = benchmark::Counter(static_cast<double>(digests.size()));
  state.counters["vo_chain_bytes"] = benchmark::Counter(static_cast<double>(bytes));

  // Actual shipped bytes for a representative query, in both wire formats.
  const workload::RangeQuerySpec spec = gen.NextQuery(0.01);
  const core::QueryResponse response = db.Query(spec.lb, spec.ub);
  state.counters["wire_v2_bytes"] = benchmark::Counter(static_cast<double>(
      core::SerializeResponse(response, core::WireVersion::kV2).size()));
  state.counters["wire_v3_bytes"] = benchmark::Counter(static_cast<double>(
      core::SerializeResponse(response, core::WireVersion::kV3).size()));
}

void RegisterAll() {
  const struct {
    AdsKind kind;
    const char* name;
  } kinds[] = {
      {AdsKind::kMbTree, "MB-tree"},
      {AdsKind::kGem2, "GEM2-tree"},
      {AdsKind::kGem2Star, "GEM2x-tree"},
  };
  const uint64_t max_n = EnvScale("GEM2_VOCHAIN_MAX_N", 100'000);
  for (const auto& k : kinds) {
    for (uint64_t n = 1000; n <= max_n; n *= 10) {
      benchmark::RegisterBenchmark(
          (std::string("VoChain/") + k.name + "/N:" + std::to_string(n)).c_str(),
          [kind = k.kind, n](benchmark::State& s) { VoChainSize(s, kind, n); })
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
