// Validates the paper's analytic cost models (Sections IV-A, IV-B, V-F)
// against measured gas: for each structure and size, reports the measured
// per-operation gas next to the closed-form prediction and their ratio.
//
// Expected: ratios near 1 for the MB-tree insert/update and SMB-tree insert
// formulas (our implementation charges the same operational terms), and the
// GEM2-tree measured cost bounded by the paper's O(log N) growth.
#include <cmath>

#include "bench_common.h"
#include "crypto/digest.h"
#include "smbtree/smbtree.h"

namespace gem2::bench {
namespace {

constexpr double kF = 4;  // fanout
const gas::Schedule kS = gas::kEthereumSchedule;

double MbInsertModel(double n) {
  // C = logF(N) * (2 sstore + 2 supdate + (2F+1) sload + Chash) + sstore
  const double levels = std::log(n) / std::log(kF);
  const double chash = 4 * 42 + 54 + 42;  // per-node hash work (F entries + fold)
  return levels * (2 * kS.sstore + 2 * kS.supdate + (2 * kF + 1) * kS.sload + chash) +
         kS.sstore;
}

double MbUpdateModel(double n) {
  // C = logF(N) * (supdate + (F+1) sload + Chash) + supdate
  const double levels = std::log(n) / std::log(kF);
  const double chash = 4 * 42 + 54 + 42;
  return levels * (kS.supdate + (kF + 1) * kS.sload + chash) + kS.supdate;
}

double SmbInsertModel(double n) {
  // C = N*(sload + log2(N)*mem) + hash folding + sstore + supdate
  const double hash = n * 42.0 + (n / (kF - 1)) * (54 + 42);
  return n * (kS.sload + std::log2(n) * kS.mem) + hash + kS.sstore + kS.supdate;
}

void MbInsertVsModel(benchmark::State& state, uint64_t n) {
  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
  mbtree::MbTree tree(4);
  for (uint64_t i = 0; i < n; ++i) {
    Object o = gen.Next().object;
    tree.Insert(o.key, crypto::ValueHash(o.value));
  }
  uint64_t gas = 0;
  const int kSamples = 64;
  for (auto _ : state) {
    for (int i = 0; i < kSamples; ++i) {
      Object o = gen.Next().object;
      gas::Meter meter(kS, 1ull << 60);
      tree.Insert(o.key, crypto::ValueHash(o.value), &meter);
      gas += meter.used();
    }
  }
  const double measured = static_cast<double>(gas) / kSamples;
  state.counters["measured"] = benchmark::Counter(measured);
  state.counters["model"] = benchmark::Counter(MbInsertModel(static_cast<double>(n)));
  state.counters["ratio"] =
      benchmark::Counter(measured / MbInsertModel(static_cast<double>(n)));
}

void MbUpdateVsModel(benchmark::State& state, uint64_t n) {
  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
  mbtree::MbTree tree(4);
  std::vector<Key> keys;
  for (uint64_t i = 0; i < n; ++i) {
    Object o = gen.Next().object;
    keys.push_back(o.key);
    tree.Insert(o.key, crypto::ValueHash(o.value));
  }
  uint64_t gas = 0;
  const int kSamples = 64;
  for (auto _ : state) {
    for (int i = 0; i < kSamples; ++i) {
      gas::Meter meter(kS, 1ull << 60);
      tree.Update(keys[i * 7 % keys.size()],
                  crypto::ValueHash("v" + std::to_string(i)), &meter);
      gas += meter.used();
    }
  }
  const double measured = static_cast<double>(gas) / kSamples;
  state.counters["measured"] = benchmark::Counter(measured);
  state.counters["model"] = benchmark::Counter(MbUpdateModel(static_cast<double>(n)));
  state.counters["ratio"] =
      benchmark::Counter(measured / MbUpdateModel(static_cast<double>(n)));
}

void SmbInsertVsModel(benchmark::State& state, uint64_t n) {
  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
  smbtree::SmbTreeContract contract("smb", 4);
  ads::EntryList seed;
  for (uint64_t i = 0; i < n; ++i) {
    Object o = gen.Next().object;
    seed.push_back({o.key, crypto::ValueHash(o.value)});
  }
  contract.SeedUnmetered(seed);
  uint64_t gas = 0;
  const int kSamples = 4;
  for (auto _ : state) {
    for (int i = 0; i < kSamples; ++i) {
      Object o = gen.Next().object;
      gas::Meter meter(kS, 1ull << 60);
      contract.Insert(o.key, crypto::ValueHash(o.value), meter);
      gas += meter.used();
    }
  }
  const double measured = static_cast<double>(gas) / kSamples;
  state.counters["measured"] = benchmark::Counter(measured);
  state.counters["model"] = benchmark::Counter(SmbInsertModel(static_cast<double>(n)));
  state.counters["ratio"] =
      benchmark::Counter(measured / SmbInsertModel(static_cast<double>(n)));
}

void Gem2LogGrowth(benchmark::State& state, uint64_t n) {
  // The paper proves GEM2 insertion is O(log N); report the measured average
  // so growth across the sweep can be eyeballed against log scaling.
  uint64_t total = 0;
  for (auto _ : state) {
    WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
    AuthenticatedDb db(MakeDbOptions(AdsKind::kGem2, gen));
    for (uint64_t i = 0; i < n; ++i) total += db.Insert(gen.Next().object).gas_used;
  }
  state.counters["gas_per_op"] =
      benchmark::Counter(static_cast<double>(total) / static_cast<double>(n));
  state.counters["per_log2N"] = benchmark::Counter(
      static_cast<double>(total) / static_cast<double>(n) / std::log2(n));
}

void RegisterAll() {
  for (uint64_t n : {1000, 10'000, 100'000}) {
    benchmark::RegisterBenchmark(
        ("CostModel/MB-insert/N:" + std::to_string(n)).c_str(),
        [n](benchmark::State& s) { MbInsertVsModel(s, n); })
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("CostModel/MB-update/N:" + std::to_string(n)).c_str(),
        [n](benchmark::State& s) { MbUpdateVsModel(s, n); })
        ->Iterations(1);
  }
  for (uint64_t n : {256, 1024, 4096}) {
    benchmark::RegisterBenchmark(
        ("CostModel/SMB-insert/N:" + std::to_string(n)).c_str(),
        [n](benchmark::State& s) { SmbInsertVsModel(s, n); })
        ->Iterations(1);
  }
  for (uint64_t n : {1000, 10'000, 100'000}) {
    benchmark::RegisterBenchmark(
        ("CostModel/GEM2-insert/N:" + std::to_string(n)).c_str(),
        [n](benchmark::State& s) { Gem2LogGrowth(s, n); })
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
