/// \file bench_query.h
/// Shared implementation of the paper's query-performance experiments
/// (Figs. 9 and 10): SP CPU time, VO size (VO_sp + VO_chain), and client
/// verification CPU time versus query selectivity, for the MB-tree,
/// GEM2-tree, GEM2*-tree, and LSM-tree.
///
/// Protocol (Section VII-B2, scaled): fixed database size, selectivity in
/// {1%, 2%, 5%, 10%}, 50 randomly positioned range queries per point,
/// averages reported.
///
/// Expected shape: all metrics increase with the query range; GEM2 tracks
/// the MB-tree closely; GEM2* is only slightly worse at large ranges and
/// under skew.
#ifndef GEM2_BENCH_BENCH_QUERY_H_
#define GEM2_BENCH_BENCH_QUERY_H_

#include <cctype>
#include <chrono>

#include "bench_common.h"

namespace gem2::bench {

inline void QueryPerformance(benchmark::State& state, const std::string& bench,
                             const std::string& name, const char* ads,
                             AdsKind kind, KeyDistribution dist,
                             double selectivity) {
  const uint64_t n = EnvScale("GEM2_QUERY_N", 50'000);
  const uint64_t queries = EnvScale("GEM2_QUERY_COUNT", 50);

  WorkloadGenerator gen(MakeWorkload(dist));
  auto owned = std::make_unique<AuthenticatedDb>(MakeDbOptions(kind, gen));
  core::RangeStore& db = *owned;
  for (uint64_t i = 0; i < n; ++i) db.Insert(gen.Next().object);

  // VO_chain is retrieved once; the client reuses it across queries. Going
  // through RangeStore keeps this loop backend-agnostic (a sharded store
  // returns one state per shard contract).
  std::vector<chain::AuthenticatedState> vo_chain = db.ReadChainState();

  double sp_seconds = 0;
  double client_seconds = 0;
  uint64_t vo_sp_bytes = 0;
  uint64_t results = 0;

  for (auto _ : state) {
    for (uint64_t q = 0; q < queries; ++q) {
      workload::RangeQuerySpec spec = gen.NextQuery(selectivity);

      auto t0 = std::chrono::steady_clock::now();
      core::QueryResponse response = db.Query(spec.lb, spec.ub);
      auto t1 = std::chrono::steady_clock::now();
      core::VerifiedResult vr = db.VerifyAgainst(vo_chain, response);
      auto t2 = std::chrono::steady_clock::now();

      if (!vr.ok) {
        state.SkipWithError(("verification failed: " + vr.error).c_str());
        return;
      }
      sp_seconds += std::chrono::duration<double>(t1 - t0).count();
      client_seconds += std::chrono::duration<double>(t2 - t1).count();
      vo_sp_bytes += vr.vo_sp_bytes;
      results += vr.objects.size();
    }
  }

  const double q = static_cast<double>(queries);
  // Query/verify burn no gas; the record carries the figure's metrics in
  // `extra` (per-query averages) instead of the gas columns.
  BenchRun run(bench, name, ads, DistName(dist), n);
  run.Extra("selectivity", selectivity);
  run.Extra("queries", q);
  run.Extra("sp_ms_per_query", sp_seconds * 1000.0 / q);
  run.Extra("client_ms_per_query", client_seconds * 1000.0 / q);
  run.Extra("vo_sp_kb_per_query", static_cast<double>(vo_sp_bytes) / q / 1024.0);
  run.Extra("results_per_query", static_cast<double>(results) / q);
  run.Finish();
  state.counters["sp_ms_per_query"] = benchmark::Counter(sp_seconds * 1000.0 / q);
  state.counters["client_ms_per_query"] =
      benchmark::Counter(client_seconds * 1000.0 / q);
  state.counters["vo_sp_kb_per_query"] =
      benchmark::Counter(static_cast<double>(vo_sp_bytes) / q / 1024.0);
  state.counters["results_per_query"] =
      benchmark::Counter(static_cast<double>(results) / q);
}

inline void RegisterQueryBenchmarks(const char* figure, KeyDistribution dist) {
  std::string bench(figure);
  for (char& c : bench) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  const struct {
    AdsKind kind;
    const char* name;
  } kinds[] = {
      {AdsKind::kMbTree, "MB-tree"},
      {AdsKind::kGem2, "GEM2-tree"},
      {AdsKind::kGem2Star, "GEM2x-tree"},
      {AdsKind::kLsm, "LSM-tree"},
  };
  for (const auto& k : kinds) {
    for (double sel : {0.01, 0.02, 0.05, 0.10}) {
      std::string name = std::string(figure) + "/" + k.name + "/" +
                         DistName(dist) +
                         "/selectivity:" + std::to_string(sel).substr(0, 4);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [bench, name, ads = k.name, kind = k.kind, dist, sel](benchmark::State& s) {
            QueryPerformance(s, bench, name, ads, kind, dist, sel);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace gem2::bench

#endif  // GEM2_BENCH_BENCH_QUERY_H_
