// Gas composition per ADS: where each structure actually spends its gas,
// as percentages of sstore / supdate / sload / memory / hashing. This is the
// measured counterpart of the paper's design principles (Section IV-C):
// the MB-tree is write-dominated; the GEM2 family shifts spend toward reads
// and in-memory hashing ("use more reads instead of writes").
#include <algorithm>

#include "bench_common.h"

namespace gem2::bench {
namespace {

void Breakdown(benchmark::State& state, AdsKind kind) {
  uint64_t n = EnvScale("GEM2_BREAKDOWN_N", 10'000);
  // The SMB-tree is O(N) per op (O(N^2) for the stream); cap it.
  if (kind == AdsKind::kSmbTree) n = std::min<uint64_t>(n, 2000);
  gas::GasBreakdown total;
  for (auto _ : state) {
    WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
    AuthenticatedDb db(MakeDbOptions(kind, gen));
    for (uint64_t i = 0; i < n; ++i) {
      total += db.Insert(gen.Next().object).breakdown;
    }
  }
  const double sum = static_cast<double>(total.total());
  state.counters["gas_per_op"] = benchmark::Counter(sum / static_cast<double>(n));
  state.counters["sstore_pct"] =
      benchmark::Counter(100.0 * static_cast<double>(total.sstore) / sum);
  state.counters["supdate_pct"] =
      benchmark::Counter(100.0 * static_cast<double>(total.supdate) / sum);
  state.counters["sload_pct"] =
      benchmark::Counter(100.0 * static_cast<double>(total.sload) / sum);
  state.counters["mem_pct"] =
      benchmark::Counter(100.0 * static_cast<double>(total.mem) / sum);
  state.counters["hash_pct"] =
      benchmark::Counter(100.0 * static_cast<double>(total.hash) / sum);
}

void RegisterAll() {
  const struct {
    AdsKind kind;
    const char* name;
  } kinds[] = {
      {AdsKind::kMbTree, "MB-tree"},
      {AdsKind::kSmbTree, "SMB-tree"},
      {AdsKind::kGem2, "GEM2-tree"},
      {AdsKind::kGem2Star, "GEM2x-tree"},
  };
  for (const auto& k : kinds) {
    benchmark::RegisterBenchmark(
        (std::string("GasBreakdown/") + k.name).c_str(),
        [kind = k.kind](benchmark::State& s) { Breakdown(s, kind); })
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
