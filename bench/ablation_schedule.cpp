// Ablation: fee-schedule sensitivity. The GEM2-tree exists because Ethereum
// prices storage writes orders of magnitude above reads and hashing
// (Table I). This sweep rescales the write fees (sstore/supdate divided by
// k, reads/memory/hash unchanged) and reports the GEM2-vs-MB-tree gas ratio.
//
// Measured shape (see EXPERIMENTS.md): the MB/GEM2 ratio barely moves
// (~3.5x at Ethereum prices, ~3.2x with writes 100x cheaper). The reason is
// visible in gas_breakdown: after amortization the GEM2-tree's residual cost
// is itself write-dominated — it simply performs *several times fewer* write
// operations per object than the MB-tree. The read-for-write substitution
// shows up inside the SMB-tree component; the end-to-end saving is an
// operation-count saving, and is therefore robust to fee-schedule changes.
#include "bench_common.h"

namespace gem2::bench {
namespace {

void GasVsWritePrice(benchmark::State& state, uint64_t divisor) {
  const uint64_t n = EnvScale("GEM2_SCHEDULE_N", 10'000);
  gas::Schedule schedule = gas::kEthereumSchedule;
  schedule.sstore /= divisor;
  schedule.supdate /= divisor;

  auto total_gas = [&](AdsKind kind) {
    WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
    DbOptions options = MakeDbOptions(kind, gen);
    options.env.schedule = schedule;
    AuthenticatedDb db(options);
    uint64_t total = 0;
    for (uint64_t i = 0; i < n; ++i) total += db.Insert(gen.Next().object).gas_used;
    return total;
  };

  uint64_t gem2 = 0;
  uint64_t mb = 0;
  for (auto _ : state) {
    gem2 = total_gas(AdsKind::kGem2);
    mb = total_gas(AdsKind::kMbTree);
  }
  state.counters["gem2_gas_per_op"] =
      benchmark::Counter(static_cast<double>(gem2) / static_cast<double>(n));
  state.counters["mb_gas_per_op"] =
      benchmark::Counter(static_cast<double>(mb) / static_cast<double>(n));
  state.counters["mb_over_gem2"] =
      benchmark::Counter(static_cast<double>(mb) / static_cast<double>(gem2));
  state.counters["sstore_price"] = benchmark::Counter(static_cast<double>(schedule.sstore));
}

void RegisterAll() {
  for (uint64_t divisor : {1, 4, 16, 100}) {
    benchmark::RegisterBenchmark(
        ("AblationSchedule/write_fees_div:" + std::to_string(divisor)).c_str(),
        [divisor](benchmark::State& s) { GasVsWritePrice(s, divisor); })
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
