// Feasibility under the real 8,000,000 block gasLimit (paper Section II-B and
// the Fig. 7 observation that the LSM-tree "is only able to support up to
// 10,000 objects"): drives each ADS with the limit *enforced* and reports the
// database size at which the first transaction aborts with out-of-gas
// (0 = never, within the swept horizon).
//
// Expected: MB-tree, GEM2-tree and GEM2*-tree never abort (their per-op gas
// is bounded well under the limit); the LSM-tree aborts as soon as a level
// merge must rewrite more storage words than the limit affords; the SMB-tree
// baseline aborts once its O(N) rebuild outgrows the limit.
#include "bench_common.h"
#include "crypto/digest.h"
#include "smbtree/smbtree.h"

namespace gem2::bench {
namespace {

void FirstAbortSize(benchmark::State& state, AdsKind kind, uint64_t smax = 0) {
  const uint64_t horizon = EnvScale("GEM2_GASLIMIT_HORIZON", 30'000);
  uint64_t abort_at = 0;
  uint64_t max_gas = 0;
  for (auto _ : state) {
    WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
    DbOptions options = MakeDbOptions(kind, gen);
    options.env.gas_limit = gas::kDefaultGasLimit;  // enforce 8M
    if (smax != 0) options.gem2.smax = smax;
    AuthenticatedDb db(options);
    for (uint64_t i = 1; i <= horizon; ++i) {
      chain::TxReceipt r = db.Insert(gen.Next().object);
      if (r.gas_used > max_gas) max_gas = r.gas_used;
      if (!r.ok) {
        abort_at = i;
        break;
      }
    }
  }
  state.counters["first_abort_at_n"] = benchmark::Counter(static_cast<double>(abort_at));
  state.counters["max_tx_gas"] = benchmark::Counter(static_cast<double>(max_gas));
  state.counters["gas_limit"] =
      benchmark::Counter(static_cast<double>(gas::kDefaultGasLimit));
}

/// The SMB-tree rebuild is O(N) gas *and* CPU per insert, so instead of
/// replaying an O(N^2) stream we seed contracts at doubling sizes and probe a
/// single metered insert at each, reporting the first size that aborts.
void SmbAbortSize(benchmark::State& state) {
  const uint64_t horizon = EnvScale("GEM2_GASLIMIT_SMB_HORIZON", 65'536);
  uint64_t abort_at = 0;
  uint64_t max_gas = 0;
  for (auto _ : state) {
    for (uint64_t n = 1024; n <= horizon; n *= 2) {
      WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
      smbtree::SmbTreeContract contract("smb", 4);
      ads::EntryList seed;
      for (uint64_t i = 0; i < n; ++i) {
        Object o = gen.Next().object;
        seed.push_back({o.key, crypto::ValueHash(o.value)});
      }
      contract.SeedUnmetered(seed);
      Object probe = gen.Next().object;
      gas::Meter meter(gas::kEthereumSchedule, gas::kDefaultGasLimit);
      try {
        contract.Insert(probe.key, crypto::ValueHash(probe.value), meter);
        if (meter.used() > max_gas) max_gas = meter.used();
      } catch (const gas::OutOfGasError&) {
        abort_at = n;
        break;
      }
    }
  }
  state.counters["first_abort_at_n"] = benchmark::Counter(static_cast<double>(abort_at));
  state.counters["max_tx_gas"] = benchmark::Counter(static_cast<double>(max_gas));
  state.counters["gas_limit"] =
      benchmark::Counter(static_cast<double>(gas::kDefaultGasLimit));
}

void RegisterAll() {
  const struct {
    AdsKind kind;
    const char* name;
  } kinds[] = {
      {AdsKind::kMbTree, "MB-tree"},
      {AdsKind::kGem2, "GEM2-tree"},
      {AdsKind::kGem2Star, "GEM2x-tree"},
      {AdsKind::kLsm, "LSM-tree"},
  };
  for (const auto& k : kinds) {
    benchmark::RegisterBenchmark(
        (std::string("GasLimit/") + k.name).c_str(),
        [kind = k.kind](benchmark::State& s) { FirstAbortSize(s, kind); })
        ->Iterations(1);
  }
  // The paper's default Smax = 2048 makes the GEM2 bulk merge into P0 a
  // single ~10^8-gas transaction — far past the public-chain limit (the
  // paper deployed on a private Geth network, where gasLimit is
  // configurable). Shrinking Smax helps less than one might hope for the
  // plain GEM2-tree: under uniform keys a bulk run scatters across P0, so
  // nearly every merged object dirties its own MB-tree path and the merge
  // transaction stays expensive. The GEM2*-tree's regions keep each bulk run
  // key-local, which is what actually brings merges under the public limit —
  // a deployment-relevant advantage of the two-level design beyond its
  // average-gas savings.
  benchmark::RegisterBenchmark(
      "GasLimit/GEM2-tree-Smax64",
      [](benchmark::State& s) { FirstAbortSize(s, AdsKind::kGem2, 64); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "GasLimit/GEM2x-tree-Smax64",
      [](benchmark::State& s) { FirstAbortSize(s, AdsKind::kGem2Star, 64); })
      ->Iterations(1);
  benchmark::RegisterBenchmark("GasLimit/SMB-tree", SmbAbortSize)->Iterations(1);
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
