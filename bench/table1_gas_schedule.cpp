// Reproduces paper Table I: the Ethereum gas fee schedule, exercised through
// the metered storage/memory/hash substrate so every constant is measured
// from an actual operation rather than echoed from a table.
#include "bench_common.h"
#include "chain/storage.h"
#include "crypto/digest.h"

namespace gem2::bench {
namespace {

void SloadCost(benchmark::State& state) {
  chain::MeteredStorage storage;
  gas::Meter meter;
  for (auto _ : state) {
    meter.Reset();
    storage.Load({1, 0}, meter);
    benchmark::DoNotOptimize(meter.used());
  }
  state.counters["gas"] = static_cast<double>([] {
    chain::MeteredStorage s;
    gas::Meter m;
    s.Load({1, 0}, m);
    return m.used();
  }());
}

void SstoreCost(benchmark::State& state) {
  uint64_t slot = 0;
  chain::MeteredStorage storage;
  gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
  for (auto _ : state) {
    storage.Store({1, slot++}, WordFromUint64(slot), meter);
  }
  state.counters["gas"] = static_cast<double>([] {
    chain::MeteredStorage s;
    gas::Meter m;
    s.Store({1, 0}, WordFromUint64(1), m);
    return m.used();
  }());
}

void SupdateCost(benchmark::State& state) {
  chain::MeteredStorage storage;
  gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
  storage.Store({1, 0}, WordFromUint64(1), meter);
  for (auto _ : state) {
    storage.Store({1, 0}, WordFromUint64(2), meter);
  }
  state.counters["gas"] = static_cast<double>([] {
    chain::MeteredStorage s;
    gas::Meter m;
    s.Store({1, 0}, WordFromUint64(1), m);
    m.Reset();
    s.Store({1, 0}, WordFromUint64(2), m);
    return m.used();
  }());
}

void MemCost(benchmark::State& state) {
  gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
  for (auto _ : state) {
    meter.ChargeMem(1);
  }
  state.counters["gas"] = static_cast<double>(gas::kEthereumSchedule.mem);
}

void HashCost(benchmark::State& state) {
  const uint64_t words = static_cast<uint64_t>(state.range(0));
  gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
  Bytes data(words * 32, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Keccak256(data));
  }
  gas::Meter one;
  one.ChargeHash(words * 32);
  state.counters["gas"] = static_cast<double>(one.used());
  state.counters["words"] = static_cast<double>(words);
}

BENCHMARK(SloadCost);    // Table I: Csload   = 200
BENCHMARK(SstoreCost);   // Table I: Csstore  = 20000
BENCHMARK(SupdateCost);  // Table I: Csupdate = 5000
BENCHMARK(MemCost);      // Table I: Cmem     = 3
BENCHMARK(HashCost)->Arg(1)->Arg(4)->Arg(16)->Arg(64);  // 30 + 6*words

}  // namespace
}  // namespace gem2::bench

BENCHMARK_MAIN();
