// Reproduces the paper's Section IV analysis: per-insert gas of the two
// baselines as the database grows. The MB-tree costs O(log N) per insert; the
// suppressed SMB-tree costs O(N log N) but with far cheaper constants (reads
// and memory instead of writes), so SMB wins below a crossover size and loses
// beyond it — the observation that motivates GEM2's exponential partitions
// and the Smax bound (paper default 2048).
#include "bench_common.h"
#include "crypto/digest.h"
#include "smbtree/smbtree.h"

namespace gem2::bench {
namespace {

/// Per-insert gas of an MB-tree that already holds n objects.
void MbInsertGasAt(benchmark::State& state, uint64_t n) {
  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
  mbtree::MbTree tree(4);
  for (uint64_t i = 0; i < n; ++i) {
    Object obj = gen.Next().object;
    tree.Insert(obj.key, crypto::ValueHash(obj.value));
  }
  uint64_t gas = 0;
  uint64_t samples = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      Object obj = gen.Next().object;
      gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
      tree.Insert(obj.key, crypto::ValueHash(obj.value), &meter);
      gas += meter.used();
      ++samples;
    }
  }
  state.counters["gas_per_insert"] =
      benchmark::Counter(static_cast<double>(gas) / static_cast<double>(samples));
}

/// Per-insert gas of an SMB-tree that already holds n objects.
void SmbInsertGasAt(benchmark::State& state, uint64_t n) {
  WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
  smbtree::SmbTreeContract contract("smb", 4);
  ads::EntryList seed;
  for (uint64_t i = 0; i < n; ++i) {
    Object obj = gen.Next().object;
    seed.push_back({obj.key, crypto::ValueHash(obj.value)});
  }
  contract.SeedUnmetered(seed);
  uint64_t gas = 0;
  uint64_t samples = 0;
  for (auto _ : state) {
    for (int i = 0; i < 4; ++i) {
      Object obj = gen.Next().object;
      gas::Meter meter(gas::kEthereumSchedule, 1ull << 60);
      contract.Insert(obj.key, crypto::ValueHash(obj.value), meter);
      gas += meter.used();
      ++samples;
    }
  }
  state.counters["gas_per_insert"] =
      benchmark::Counter(static_cast<double>(gas) / static_cast<double>(samples));
}

void RegisterAll() {
  const uint64_t max_n = EnvScale("GEM2_CROSSOVER_MAX_N", 8192);
  for (uint64_t n = 64; n <= max_n; n *= 2) {
    benchmark::RegisterBenchmark(
        ("Crossover/MB-tree/N:" + std::to_string(n)).c_str(),
        [n](benchmark::State& s) { MbInsertGasAt(s, n); })
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("Crossover/SMB-tree/N:" + std::to_string(n)).c_str(),
        [n](benchmark::State& s) { SmbInsertGasAt(s, n); })
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
