// Reproduces paper Fig. 10: authenticated query and verification performance
// (SP CPU time, VO size, client CPU time) vs query selectivity under a
// zipfian(0.8) key distribution. See bench_query.h for protocol and
// expectations.
#include "bench_query.h"

int main(int argc, char** argv) {
  gem2::bench::RegisterQueryBenchmarks("Fig10",
                                       gem2::workload::KeyDistribution::kZipfian);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gem2::bench::EmitBenchJson();
  benchmark::Shutdown();
  return 0;
}
