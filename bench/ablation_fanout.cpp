// Ablation: tree fanout F. The paper derives F = 4 from packing an MB-tree
// node into one 32-byte EVM word; this sweep shows how insert gas responds
// when F varies for both the MB-tree baseline and the GEM2-tree.
//
// Expected shape: larger F means shallower trees (fewer per-level supdates)
// but more sloads per refreshed node; under the paper's cost model the
// per-level write terms dominate, so gas falls as F grows — the paper's
// F = 4 is a storage-packing constraint, not a gas optimum.
#include "bench_common.h"

namespace gem2::bench {
namespace {

void GasVsFanout(benchmark::State& state, AdsKind kind, int fanout) {
  const uint64_t n = EnvScale("GEM2_ABLATION_N", 30'000);
  uint64_t total = 0;
  for (auto _ : state) {
    WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
    DbOptions options = MakeDbOptions(kind, gen);
    options.gem2.fanout = fanout;
    AuthenticatedDb db(options);
    for (uint64_t i = 0; i < n; ++i) total += db.Insert(gen.Next().object).gas_used;
  }
  state.counters["gas_per_op"] =
      benchmark::Counter(static_cast<double>(total) / static_cast<double>(n));
}

void RegisterAll() {
  for (int fanout : {3, 4, 8, 16, 32}) {
    benchmark::RegisterBenchmark(
        ("AblationFanout/MB-tree/F:" + std::to_string(fanout)).c_str(),
        [fanout](benchmark::State& s) { GasVsFanout(s, AdsKind::kMbTree, fanout); })
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("AblationFanout/GEM2-tree/F:" + std::to_string(fanout)).c_str(),
        [fanout](benchmark::State& s) { GasVsFanout(s, AdsKind::kGem2, fanout); })
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
