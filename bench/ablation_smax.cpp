// Ablation: the Smax bound on the largest SMB-tree partition (paper sets
// 2048 "based on the cost analysis of the MB-tree and SMB-tree"). Sweeps
// Smax and reports average insert gas plus the most expensive single
// transaction for the GEM2-tree.
//
// Expected shape: average gas falls as Smax grows (objects migrate into the
// expensive MB-tree P0 less often, and SMB rebuild costs are amortized), but
// the worst single transaction — the bulk merge of Smax objects into P0 —
// grows linearly with Smax. The usable optimum is therefore the largest Smax
// whose merge transaction still fits the block gasLimit (see
// gaslimit_feasibility), which is what the paper's cost analysis balances.
#include "bench_common.h"

namespace gem2::bench {
namespace {

void Gem2GasVsSmax(benchmark::State& state, uint64_t smax) {
  const uint64_t n = EnvScale("GEM2_ABLATION_N", 30'000);
  uint64_t total = 0;
  uint64_t max_tx = 0;
  for (auto _ : state) {
    WorkloadGenerator gen(MakeWorkload(KeyDistribution::kUniform));
    DbOptions options = MakeDbOptions(AdsKind::kGem2, gen);
    options.gem2.smax = smax;
    AuthenticatedDb db(options);
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t gas = db.Insert(gen.Next().object).gas_used;
      total += gas;
      if (gas > max_tx) max_tx = gas;
    }
  }
  state.counters["gas_per_op"] =
      benchmark::Counter(static_cast<double>(total) / static_cast<double>(n));
  state.counters["max_tx_gas"] = benchmark::Counter(static_cast<double>(max_tx));
}

void RegisterAll() {
  for (uint64_t smax : {64, 256, 1024, 2048, 4096, 16384}) {
    benchmark::RegisterBenchmark(
        ("AblationSmax/GEM2-tree/Smax:" + std::to_string(smax)).c_str(),
        [smax](benchmark::State& s) { Gem2GasVsSmax(s, smax); })
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace gem2::bench

int main(int argc, char** argv) {
  gem2::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
