// IoT telemetry over a hybrid-storage blockchain — the motivating scenario of
// the paper's introduction (Fig. 1): resource-poor devices continuously
// notarize sensor readings on-chain while a cloud service provider stores the
// raw data, and an auditor later runs *verifiable* time-range queries.
//
// Here 50 sensors emit timestamped readings (keys = microsecond timestamps),
// some readings are corrected in place (updates), and an auditor extracts a
// window with full soundness/completeness verification. The GEM2*-tree keeps
// the on-chain maintenance gas low.
//
// Build & run:  ./build/examples/iot_telemetry
#include <cstdio>
#include <string>

#include "core/authenticated_db.h"
#include "workload/workload.h"

namespace {

std::string Reading(int sensor, double celsius) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "sensor-%02d temp=%.2fC", sensor, celsius);
  return buf;
}

}  // namespace

int main() {
  using namespace gem2;

  // Timestamps land in a day-long window; the GEM2*-tree's upper level is
  // split into 32 uniform time regions.
  constexpr Key kDayStart = 1'700'000'000'000'000;
  constexpr Key kTick = 1'000'000;  // 1 second in microseconds
  constexpr int kSensors = 50;
  constexpr int kRounds = 40;

  core::DbOptions options;
  options.kind = core::AdsKind::kGem2Star;
  options.gem2.m = 8;
  options.gem2.smax = 256;
  for (int r = 1; r < 32; ++r) {
    options.split_points.push_back(kDayStart +
                                   (kRounds * kSensors * kTick / 32) * r);
  }
  core::AuthenticatedDb db(options);

  Rng rng(2026);
  uint64_t total_gas = 0;
  uint64_t ops = 0;

  // Devices report in rounds; each reading gets a unique timestamp.
  for (int round = 0; round < kRounds; ++round) {
    for (int sensor = 0; sensor < kSensors; ++sensor) {
      const Key ts = kDayStart +
                     (static_cast<Key>(round) * kSensors + sensor) * kTick +
                     static_cast<Key>(rng.Uniform(0, kTick - 1));
      const double temp = 20.0 + static_cast<double>(rng.Uniform(0, 1500)) / 100.0;
      total_gas += db.Insert({ts, Reading(sensor, temp)}).gas_used;
      ++ops;
    }
  }

  // A calibration pass corrects 5% of past readings in place (updates).
  const auto& chain = db.environment().blockchain();
  std::printf("ingested %llu readings over %zu blocks, avg gas %llu/op\n",
              static_cast<unsigned long long>(ops), chain.height(),
              static_cast<unsigned long long>(total_gas / ops));

  core::QueryResponse all = db.Query(kDayStart, kKeyMax);
  core::VerifiedResult everything = db.Verify(all);
  if (!everything.ok) {
    std::printf("FATAL: full-range audit failed: %s\n", everything.error.c_str());
    return 1;
  }
  int corrected = 0;
  for (size_t i = 0; i < everything.objects.size(); i += 20) {
    const Object& obj = everything.objects[i];
    db.Update({obj.key, obj.value + " (calibrated)"});
    ++corrected;
  }
  std::printf("corrected %d readings in place\n", corrected);

  // The auditor pulls a verified 10-minute window.
  const Key window_lo = kDayStart + 600 * kTick;
  const Key window_hi = kDayStart + 1200 * kTick;
  core::VerifiedResult audit = db.AuthenticatedRange(window_lo, window_hi);
  std::printf("audit window: %zu readings, verified: %s\n", audit.objects.size(),
              audit.ok ? "yes" : audit.error.c_str());
  std::printf("  VO_sp %.1f KB, VO_chain %.1f KB\n",
              static_cast<double>(audit.vo_sp_bytes) / 1024.0,
              static_cast<double>(audit.vo_chain_bytes) / 1024.0);
  for (size_t i = 0; i < audit.objects.size() && i < 3; ++i) {
    std::printf("  %lld: %s\n", static_cast<long long>(audit.objects[i].key),
                audit.objects[i].value.c_str());
  }

  std::string error;
  if (!chain.Validate(&error)) {
    std::printf("FATAL: chain validation failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("blockchain validated: %zu blocks, %llu transactions\n",
              chain.height(),
              static_cast<unsigned long long>(db.environment().num_transactions()));
  return audit.ok ? 0 : 1;
}
