// Tamper detection: what the client's verification actually buys you.
//
// The service provider in the hybrid-storage model is *untrusted* (paper
// Section III-B). This example plays a malicious SP that tries, in turn, to
// forge a value, withhold an answer, inject a fabricated record, and serve a
// stale snapshot — and shows the client rejecting every attempt using nothing
// but the VO and the on-chain digests.
//
// Build & run:  ./build/examples/tamper_detection
#include <cstdio>

#include "core/authenticated_db.h"
#include "workload/workload.h"

namespace {

int g_failures = 0;

void Expect(bool rejected, const char* attack, const std::string& reason) {
  if (rejected) {
    std::printf("  [detected] %-28s -> %s\n", attack, reason.c_str());
  } else {
    std::printf("  [MISSED]   %-28s\n", attack);
    ++g_failures;
  }
}

}  // namespace

int main() {
  using namespace gem2;

  workload::WorkloadOptions wopts;
  wopts.domain_max = 1'000'000;
  workload::WorkloadGenerator gen(wopts);

  core::DbOptions options;
  options.kind = core::AdsKind::kGem2;
  core::AuthenticatedDb db(options);
  for (const workload::Operation& op : gen.Batch(500)) db.Insert(op.object);

  const Key lb = 100'000;
  const Key ub = 600'000;

  core::VerifiedResult honest = db.AuthenticatedRange(lb, ub);
  std::printf("honest SP: %zu results, verified: %s\n\n", honest.objects.size(),
              honest.ok ? "yes" : honest.error.c_str());
  if (!honest.ok || honest.objects.size() < 3) return 1;

  std::printf("malicious SP attempts:\n");

  {  // Forge a value.
    core::QueryResponse r = db.Query(lb, ub);
    for (auto& tree : r.trees) {
      if (!tree.objects.empty()) {
        tree.objects[0].value = "forged sensor reading";
        break;
      }
    }
    core::VerifiedResult v = db.Verify(r);
    Expect(!v.ok, "forged value", v.error);
  }

  {  // Withhold an in-range answer.
    core::QueryResponse r = db.Query(lb, ub);
    for (auto& tree : r.trees) {
      if (!tree.objects.empty()) {
        tree.objects.erase(tree.objects.begin());
        break;
      }
    }
    core::VerifiedResult v = db.Verify(r);
    Expect(!v.ok, "withheld answer", v.error);
  }

  {  // Inject a fabricated record.
    core::QueryResponse r = db.Query(lb, ub);
    r.trees[0].objects.push_back({lb + 1, "fabricated"});
    core::VerifiedResult v = db.Verify(r);
    Expect(!v.ok, "injected record", v.error);
  }

  {  // Drop a whole subtree's answer (e.g. hide one SMB-tree partition).
    core::QueryResponse r = db.Query(lb, ub);
    r.trees.pop_back();
    core::VerifiedResult v = db.Verify(r);
    Expect(!v.ok, "dropped partition answer", v.error);
  }

  {  // Serve a stale snapshot: answer computed before the latest update.
    core::QueryResponse stale = db.Query(lb, ub);
    db.Update({honest.objects[0].key, "corrected reading"});
    core::VerifiedResult v = db.Verify(stale);  // digests moved on-chain
    Expect(!v.ok, "stale snapshot", v.error);
  }

  std::printf("\n%s\n", g_failures == 0 ? "all attacks detected"
                                        : "SOME ATTACKS WENT UNDETECTED");
  return g_failures == 0 ? 0 : 1;
}
