// ADS comparison: a miniature of the paper's evaluation in one program.
//
// Drives the same insert/update stream through every authenticated data
// structure the library implements — plus a 4-shard multi-contract
// deployment of the GEM2-tree — and prints a side-by-side table of on-chain
// maintenance gas and query-side costs, the trade-off space the GEM2-tree
// was designed for. The measurement loop takes a core::RangeStore&, so it is
// identical for single-contract and sharded backends.
//
// Build & run:  ./build/examples/ads_comparison
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/authenticated_db.h"
#include "core/range_store.h"
#include "shard/sharded_db.h"
#include "workload/workload.h"

namespace {

using namespace gem2;

struct Row {
  uint64_t insert_gas_per_op = 0;
  uint64_t update_gas_per_op = 0;
  double sp_ms = 0;
  double client_ms = 0;
  double vo_kb = 0;
  bool ok = false;
  std::string error;
};

// One backend-agnostic measurement pass: preload, mixed updates, then
// verified queries.
Row RunWorkload(core::RangeStore& db, workload::WorkloadGenerator& gen) {
  constexpr uint64_t kPreload = 3000;
  constexpr uint64_t kMixed = 1000;
  constexpr int kQueries = 20;

  Row row;
  uint64_t insert_gas = 0;
  for (uint64_t i = 0; i < kPreload; ++i) {
    insert_gas += db.Insert(gen.Next().object).gas_used;
  }
  row.insert_gas_per_op = insert_gas / kPreload;

  gen.set_update_ratio(1.0);
  uint64_t update_gas = 0;
  for (uint64_t i = 0; i < kMixed; ++i) {
    update_gas += db.Update(gen.Next().object).gas_used;
  }
  row.update_gas_per_op = update_gas / kMixed;

  for (int q = 0; q < kQueries; ++q) {
    workload::RangeQuerySpec spec = gen.NextQuery(0.05);
    auto t0 = std::chrono::steady_clock::now();
    core::QueryResponse response = db.Query(spec.lb, spec.ub);
    auto t1 = std::chrono::steady_clock::now();
    core::VerifiedResult vr = db.Verify(response);
    auto t2 = std::chrono::steady_clock::now();
    if (!vr.ok) {
      row.error = vr.error;
      return row;
    }
    row.sp_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    row.client_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
    row.vo_kb += static_cast<double>(vr.vo_sp_bytes) / 1024.0;
  }
  row.sp_ms /= kQueries;
  row.client_ms /= kQueries;
  row.vo_kb /= kQueries;
  row.ok = true;
  return row;
}

core::DbOptions BaseOptions(core::AdsKind kind,
                            const workload::WorkloadGenerator& gen) {
  core::DbOptions options;
  options.kind = kind;
  options.gem2.m = 8;
  options.gem2.smax = 512;
  options.env.gas_limit = 1'000'000'000'000ull;  // measure, don't abort
  if (kind == core::AdsKind::kGem2Star) options.split_points = gen.SplitPoints(32);
  return options;
}

}  // namespace

int main() {
  using core::AdsKind;

  const AdsKind kinds[] = {AdsKind::kMbTree, AdsKind::kSmbTree, AdsKind::kLsm,
                           AdsKind::kGem2, AdsKind::kGem2Star};

  std::printf("%-20s %14s %14s %12s %12s %10s\n", "backend", "insert gas/op",
              "update gas/op", "SP ms/query", "verify ms", "VO KB");

  auto print_row = [](const std::string& name, const Row& row) {
    if (!row.ok) {
      std::printf("verification failed for %s: %s\n", name.c_str(),
                  row.error.c_str());
      return false;
    }
    std::printf("%-20s %14llu %14llu %12.2f %12.2f %10.1f\n", name.c_str(),
                static_cast<unsigned long long>(row.insert_gas_per_op),
                static_cast<unsigned long long>(row.update_gas_per_op),
                row.sp_ms, row.client_ms, row.vo_kb);
    return true;
  };

  for (AdsKind kind : kinds) {
    workload::WorkloadOptions wopts;
    wopts.domain_max = 10'000'000;
    workload::WorkloadGenerator gen(wopts);
    core::AuthenticatedDb db(BaseOptions(kind, gen));
    if (!print_row(db.BackendName(), RunWorkload(db, gen))) return 1;
  }

  // The same stream through a 4-shard multi-contract GEM2 deployment: four
  // contracts under one state commitment, scatter-gather queries, identical
  // per-shard gas (docs/SHARDING.md). Same loop — it only sees RangeStore&.
  {
    workload::WorkloadOptions wopts;
    wopts.domain_max = 10'000'000;
    workload::WorkloadGenerator gen(wopts);
    shard::ShardOptions sopts;
    sopts.base = BaseOptions(AdsKind::kGem2, gen);
    sopts.bounds = gen.ShardBounds(4);
    shard::ShardedDb db(std::move(sopts));
    if (!print_row(db.BackendName(), RunWorkload(db, gen))) return 1;
  }

  std::printf("\n(GEM2 family: lowest maintenance gas at comparable query cost"
              " — the paper's headline result. The sharded row shows the\n"
              " multi-contract deployment: same per-shard gas, composite"
              " verified queries.)\n");
  return 0;
}
