// ADS comparison: a miniature of the paper's evaluation in one program.
//
// Drives the same insert/update stream through every authenticated data
// structure the library implements and prints a side-by-side table of
// on-chain maintenance gas and query-side costs — the trade-off space the
// GEM2-tree was designed for.
//
// Build & run:  ./build/examples/ads_comparison
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/authenticated_db.h"
#include "workload/workload.h"

int main() {
  using namespace gem2;
  using core::AdsKind;

  constexpr uint64_t kPreload = 3000;
  constexpr uint64_t kMixed = 1000;

  const AdsKind kinds[] = {AdsKind::kMbTree, AdsKind::kSmbTree, AdsKind::kLsm,
                           AdsKind::kGem2, AdsKind::kGem2Star};

  std::printf("%-12s %14s %14s %12s %12s %10s\n", "ADS", "insert gas/op",
              "update gas/op", "SP ms/query", "verify ms", "VO KB");

  for (AdsKind kind : kinds) {
    workload::WorkloadOptions wopts;
    wopts.domain_max = 10'000'000;
    workload::WorkloadGenerator gen(wopts);

    core::DbOptions options;
    options.kind = kind;
    options.gem2.m = 8;
    options.gem2.smax = 512;
    options.env.gas_limit = 1'000'000'000'000ull;  // measure, don't abort
    if (kind == AdsKind::kGem2Star) options.split_points = gen.SplitPoints(32);
    core::AuthenticatedDb db(options);

    uint64_t insert_gas = 0;
    uint64_t inserts = 0;
    for (uint64_t i = 0; i < kPreload; ++i) {
      insert_gas += db.Insert(gen.Next().object).gas_used;
      ++inserts;
    }

    gen.set_update_ratio(1.0);
    uint64_t update_gas = 0;
    for (uint64_t i = 0; i < kMixed; ++i) {
      update_gas += db.Update(gen.Next().object).gas_used;
    }

    // 20 queries at 5% selectivity.
    double sp_ms = 0;
    double client_ms = 0;
    double vo_kb = 0;
    constexpr int kQueries = 20;
    for (int q = 0; q < kQueries; ++q) {
      workload::RangeQuerySpec spec = gen.NextQuery(0.05);
      auto t0 = std::chrono::steady_clock::now();
      core::QueryResponse response = db.Query(spec.lb, spec.ub);
      auto t1 = std::chrono::steady_clock::now();
      core::VerifiedResult vr = db.Verify(response);
      auto t2 = std::chrono::steady_clock::now();
      if (!vr.ok) {
        std::printf("verification failed for %s: %s\n",
                    core::AdsKindName(kind).c_str(), vr.error.c_str());
        return 1;
      }
      sp_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      client_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
      vo_kb += static_cast<double>(vr.vo_sp_bytes) / 1024.0;
    }

    std::printf("%-12s %14llu %14llu %12.2f %12.2f %10.1f\n",
                core::AdsKindName(kind).c_str(),
                static_cast<unsigned long long>(insert_gas / inserts),
                static_cast<unsigned long long>(update_gas / kMixed),
                sp_ms / kQueries, client_ms / kQueries, vo_kb / kQueries);
  }

  std::printf("\n(GEM2 family: lowest maintenance gas at comparable query cost"
              " — the paper's headline result.)\n");
  return 0;
}
