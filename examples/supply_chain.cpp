// Supply-chain provenance over a hybrid-storage blockchain.
//
// A manufacturer registers production lots in bulk (one transaction per
// pallet — a single intrinsic fee and one gas budget), recalls defective lots
// (deletion via dummy objects, paper Section V-B), and a regulator later runs
// a verified audit over a serial-number range. Finally the whole ledger is
// serialized and re-validated from bytes, as an auditor receiving the chain
// would do.
//
// Build & run:  ./build/examples/supply_chain
#include <cstdio>
#include <string>

#include "chain/codec.h"
#include "core/authenticated_db.h"

namespace {

std::string LotRecord(gem2::Key serial, int line) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "lot serial=%lld line=%d status=produced",
                static_cast<long long>(serial), line);
  return buf;
}

}  // namespace

int main() {
  using namespace gem2;

  core::DbOptions options;
  options.kind = core::AdsKind::kGem2Star;
  options.gem2.m = 8;
  options.gem2.smax = 128;
  options.env.tx_base_fee = 21'000;  // realistic per-transaction fee
  options.env.gas_limit = 1'000'000'000ull;  // consortium chain: raised limit
  for (Key s = 100'000; s < 1'000'000; s += 100'000) {
    options.split_points.push_back(s);
  }
  core::AuthenticatedDb db(options);

  // Each production line registers pallets of 50 lots in single transactions.
  uint64_t batched_gas = 0;
  int pallets = 0;
  for (int line = 0; line < 4; ++line) {
    for (int pallet = 0; pallet < 5; ++pallet) {
      std::vector<Object> lots;
      for (int i = 0; i < 50; ++i) {
        const Key serial =
            100'000 * (line * 2 + 1) + pallet * 1000 + i * 7 + 13;
        lots.push_back({serial, LotRecord(serial, line)});
      }
      chain::TxReceipt r = db.InsertBatch(lots);
      if (!r.ok) {
        std::printf("FATAL: pallet registration aborted: %s\n", r.error.c_str());
        return 1;
      }
      batched_gas += r.gas_used;
      ++pallets;
    }
  }
  std::printf("registered %llu lots in %d batch transactions (%llu gas total,"
              " one 21k intrinsic fee per pallet)\n",
              static_cast<unsigned long long>(db.size()), pallets,
              static_cast<unsigned long long>(batched_gas));

  // Quality control recalls a defective serial range from line 0.
  core::VerifiedResult affected = db.AuthenticatedRange(101'000, 101'999);
  int recalled = 0;
  for (const Object& lot : affected.objects) {
    db.Delete(lot.key);
    ++recalled;
  }
  std::printf("recalled %d lots (tombstoned on-chain)\n", recalled);

  // The regulator audits line 0's full serial range with verification.
  core::VerifiedResult audit = db.AuthenticatedRange(100'000, 199'999);
  std::printf("audit of line 0: %zu live lots, %llu tombstones filtered, "
              "verified: %s\n",
              audit.objects.size(),
              static_cast<unsigned long long>(audit.tombstones_filtered),
              audit.ok ? "yes" : audit.error.c_str());
  if (!audit.ok) return 1;

  // Hand the ledger to the auditor as bytes; they revalidate from scratch.
  db.environment().SealBlock();
  Bytes wire = chain::SerializeChain(db.environment().blockchain());
  std::string error;
  auto restored = chain::ParseChain(wire, &error);
  if (!restored.has_value()) {
    std::printf("FATAL: ledger failed to reload: %s\n", error.c_str());
    return 1;
  }
  std::printf("ledger exported: %zu bytes, %zu blocks, revalidated on load\n",
              wire.size(), restored->height());
  return 0;
}
