// Quickstart: the smallest end-to-end use of the library.
//
// A data owner inserts a handful of objects into a hybrid-storage blockchain
// database backed by a GEM2-tree, a client runs an authenticated range query,
// and the verification outcome plus a few gas numbers are printed.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/authenticated_db.h"

int main() {
  using namespace gem2;

  // A database whose on-chain ADS is the GEM2-tree (paper defaults).
  core::DbOptions options;
  options.kind = core::AdsKind::kGem2;
  core::AuthenticatedDb db(options);

  // The data owner streams objects: <search key, payload>.
  // Only h(payload) goes on-chain; the payload lives at the service provider.
  std::printf("inserting 20 objects...\n");
  uint64_t total_gas = 0;
  for (Key key = 1; key <= 20; ++key) {
    chain::TxReceipt receipt =
        db.Insert({key * 10, "reading #" + std::to_string(key)});
    total_gas += receipt.gas_used;
  }
  std::printf("  total gas: %llu (avg %llu / insert)\n",
              static_cast<unsigned long long>(total_gas),
              static_cast<unsigned long long>(total_gas / 20));

  // The client asks the (untrusted) service provider for a range...
  core::QueryResponse response = db.Query(45, 105);

  // ...and verifies the answer against the on-chain digests.
  core::VerifiedResult result = db.Verify(response);
  std::printf("query [45, 105] -> %zu results, verified: %s\n",
              result.objects.size(), result.ok ? "yes" : result.error.c_str());
  for (const Object& obj : result.objects) {
    std::printf("  key %lld = \"%s\"\n", static_cast<long long>(obj.key),
                obj.value.c_str());
  }
  std::printf("VO_sp: %llu bytes, VO_chain: %llu bytes, chain height: %zu\n",
              static_cast<unsigned long long>(result.vo_sp_bytes),
              static_cast<unsigned long long>(result.vo_chain_bytes),
              db.environment().blockchain().height());
  return result.ok ? 0 : 1;
}
